// Package faultfs is an injectable filesystem seam for the serving stack's
// durability layers. Production code (internal/resultcache,
// internal/jobstore) performs every disk operation through the FS
// interface; tests substitute a Faulty wrapper that injects the failures a
// real deployment will eventually see — ENOSPC on a full volume, EIO from a
// dying disk, torn writes from a crash mid-write, and fsync failures — so
// "what happens when the disk is sick" is a unit test, not an outage.
//
// The design follows the paper's robustness stance: RCAD defines behavior
// under buffer exhaustion instead of assuming infinite memory (PAPER §5),
// and the storage layer likewise defines behavior under disk exhaustion
// instead of assuming a healthy filesystem.
//
// Faults are deterministic: each rule fires on the Nth matching operation
// (and every one after it) rather than probabilistically, so a failing
// chaos test replays exactly.
package faultfs

import (
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// File is the subset of *os.File the journal needs: append writes that can
// be fsynced and closed.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the durability layers consume. It mirrors
// the os package helpers those layers use, so the OS implementation is a
// set of one-line forwards.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm os.FileMode) error
	MkdirTemp(dir, pattern string) (string, error)
	Remove(name string) error
	RemoveAll(path string) error
	Stat(name string) (os.FileInfo, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Chtimes(name string, atime, mtime time.Time) error
	// OpenAppend opens name for appending, creating it if needed.
	OpenAppend(name string) (File, error)
}

// OS is the passthrough FS used in production.
type OS struct{}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OS) Rename(oldpath, newpath string) error          { return os.Rename(oldpath, newpath) }
func (OS) MkdirAll(path string, perm os.FileMode) error  { return os.MkdirAll(path, perm) }
func (OS) MkdirTemp(dir, pattern string) (string, error) { return os.MkdirTemp(dir, pattern) }
func (OS) Remove(name string) error                      { return os.Remove(name) }
func (OS) RemoveAll(path string) error                   { return os.RemoveAll(path) }
func (OS) Stat(name string) (os.FileInfo, error)         { return os.Stat(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error)    { return os.ReadDir(name) }
func (OS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Op names one class of filesystem operation a Fault can target.
type Op string

const (
	OpRead    Op = "read"    // ReadFile
	OpWrite   Op = "write"   // WriteFile and File.Write
	OpRename  Op = "rename"  // Rename
	OpMkdir   Op = "mkdir"   // MkdirAll, MkdirTemp
	OpRemove  Op = "remove"  // Remove, RemoveAll
	OpStat    Op = "stat"    // Stat
	OpReadDir Op = "readdir" // ReadDir
	OpChtimes Op = "chtimes" // Chtimes
	OpOpen    Op = "open"    // OpenAppend
	OpSync    Op = "sync"    // File.Sync
)

// Common injected errors. ENOSPC and EIO are the real errnos so code under
// test sees exactly what a full or dying disk produces.
var (
	ErrNoSpace = syscall.ENOSPC
	ErrIO      = syscall.EIO
)

// Fault describes one injection rule.
type Fault struct {
	// Err is returned by matching operations (required).
	Err error
	// After lets the first After matching operations succeed; the fault
	// fires on every matching operation after that. Zero fails immediately.
	After int
	// Torn applies to OpWrite only: write the first half of the data before
	// failing, modelling a crash mid-write.
	Torn bool
	// PathSubstr, when non-empty, restricts the fault to operations whose
	// path contains the substring (e.g. only the journal, only sums.json).
	PathSubstr string
}

// Faulty wraps an FS with deterministic fault injection. Safe for
// concurrent use; rules can be installed and cleared while operations are
// in flight (chaos tests flip the disk between sick and healthy).
type Faulty struct {
	inner FS

	mu       sync.Mutex
	faults   map[Op]*faultState
	injected map[Op]int
}

type faultState struct {
	rule Fault
	seen int // matching operations observed so far
}

// NewFaulty wraps inner (nil means the real OS filesystem).
func NewFaulty(inner FS) *Faulty {
	if inner == nil {
		inner = OS{}
	}
	return &Faulty{
		inner:    inner,
		faults:   make(map[Op]*faultState),
		injected: make(map[Op]int),
	}
}

// Set installs (or replaces) the fault rule for op.
func (f *Faulty) Set(op Op, fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[op] = &faultState{rule: fault}
}

// Clear removes the rule for op; the disk is healthy for that op again.
func (f *Faulty) Clear(op Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.faults, op)
}

// ClearAll heals the disk entirely.
func (f *Faulty) ClearAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = make(map[Op]*faultState)
}

// Injected returns how many operations each rule has failed so far.
func (f *Faulty) Injected() map[Op]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// check consults the rule for op against path, returning (err, torn) when
// the operation must fail.
func (f *Faulty) check(op Op, path string) (error, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.faults[op]
	if !ok {
		return nil, false
	}
	if st.rule.PathSubstr != "" && !strings.Contains(path, st.rule.PathSubstr) {
		return nil, false
	}
	st.seen++
	if st.seen <= st.rule.After {
		return nil, false
	}
	f.injected[op]++
	return st.rule.Err, st.rule.Torn
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if err, _ := f.check(OpRead, name); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return f.inner.ReadFile(name)
}

func (f *Faulty) WriteFile(name string, data []byte, perm os.FileMode) error {
	if err, torn := f.check(OpWrite, name); err != nil {
		if torn {
			// Model a crash mid-write: half the payload lands, then the error.
			_ = f.inner.WriteFile(name, data[:len(data)/2], perm)
		}
		return &os.PathError{Op: "write", Path: name, Err: err}
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename, newpath); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := f.check(OpMkdir, path); err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) MkdirTemp(dir, pattern string) (string, error) {
	if err, _ := f.check(OpMkdir, dir); err != nil {
		return "", &os.PathError{Op: "mkdirtemp", Path: dir, Err: err}
	}
	return f.inner.MkdirTemp(dir, pattern)
}

func (f *Faulty) Remove(name string) error {
	if err, _ := f.check(OpRemove, name); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.inner.Remove(name)
}

func (f *Faulty) RemoveAll(path string) error {
	if err, _ := f.check(OpRemove, path); err != nil {
		return &os.PathError{Op: "removeall", Path: path, Err: err}
	}
	return f.inner.RemoveAll(path)
}

func (f *Faulty) Stat(name string) (os.FileInfo, error) {
	if err, _ := f.check(OpStat, name); err != nil {
		return nil, &os.PathError{Op: "stat", Path: name, Err: err}
	}
	return f.inner.Stat(name)
}

func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) {
	if err, _ := f.check(OpReadDir, name); err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: err}
	}
	return f.inner.ReadDir(name)
}

func (f *Faulty) Chtimes(name string, atime, mtime time.Time) error {
	if err, _ := f.check(OpChtimes, name); err != nil {
		return &os.PathError{Op: "chtimes", Path: name, Err: err}
	}
	return f.inner.Chtimes(name, atime, mtime)
}

func (f *Faulty) OpenAppend(name string) (File, error) {
	if err, _ := f.check(OpOpen, name); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, name: name, inner: inner}, nil
}

// faultyFile threads Write and Sync faults through an open handle.
type faultyFile struct {
	f     *Faulty
	name  string
	inner File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	if err, torn := ff.f.check(OpWrite, ff.name); err != nil {
		n := 0
		if torn {
			n, _ = ff.inner.Write(p[:len(p)/2])
		}
		return n, &os.PathError{Op: "write", Path: ff.name, Err: err}
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Sync() error {
	if err, _ := ff.f.check(OpSync, ff.name); err != nil {
		return &os.PathError{Op: "sync", Path: ff.name, Err: err}
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Close() error { return ff.inner.Close() }
