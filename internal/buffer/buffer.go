// Package buffer implements the store-and-forward buffering policies the
// paper analyses and evaluates:
//
//   - Unlimited: every packet is held for its full sampled delay — the
//     M/M/∞ model of §4 (evaluation case 2, "Delay&UnlimitedBuffers").
//   - DropTail: at most k packets buffered; arrivals that find the buffer
//     full are dropped — the M/M/k/k model of §4.
//   - Preemptive: at most k packets buffered; an arrival that finds the
//     buffer full forces a victim packet out for immediate transmission —
//     the RCAD mechanism of §5 (evaluation case 3, "Delay&LimitedBuffers").
//
// Victim selection is pluggable (VictimSelector) so the abl-victim ablation
// can compare the paper's choice — the packet with the shortest remaining
// delay, which keeps realised delays closest to the intended distribution —
// against alternatives.
//
// A buffer owns the release timing of the packets it holds: Admit schedules
// a release event on the simulation scheduler, and the configured forward
// function is invoked when the packet leaves. Buffers are not safe for
// concurrent use; each simulated node owns one and the simulation is
// single-goroutine.
package buffer

import (
	"fmt"

	"tempriv/internal/metrics"
	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/sim"
)

// Forward is invoked when a packet leaves the buffer. preempted reports
// whether the packet was forced out early by a preemption rather than
// completing its sampled delay.
type Forward func(p *packet.Packet, preempted bool)

// Stats counts buffer events and tracks the occupancy process N(t) of §4.
type Stats struct {
	// Arrivals counts packets offered to the buffer.
	Arrivals uint64
	// Departures counts packets released (including preempted victims).
	Departures uint64
	// Drops counts packets discarded by a full DropTail buffer.
	Drops uint64
	// Preemptions counts victims forced out early by a Preemptive buffer.
	Preemptions uint64
	// Occupancy integrates the buffered-packet count over time.
	Occupancy metrics.TimeWeighted
	// HeldDelays accumulates the realised holding times of departed
	// packets, for comparing against the intended delay distribution.
	HeldDelays metrics.Welford
}

// DropRate returns the fraction of offered packets that were dropped.
func (s *Stats) DropRate() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Drops) / float64(s.Arrivals)
}

// PreemptionRate returns the fraction of offered packets whose admission
// forced a preemption.
func (s *Stats) PreemptionRate() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Preemptions) / float64(s.Arrivals)
}

// Policy is a store-and-forward buffering policy.
type Policy interface {
	// Admit offers a packet to the buffer at the current simulated time
	// with a sampled holding delay. Depending on the policy the packet is
	// buffered, dropped, or triggers a preemption.
	Admit(p *packet.Packet, delay float64)
	// Len returns the number of packets currently buffered.
	Len() int
	// Stats returns the buffer's counters. The pointer stays valid for the
	// buffer's lifetime.
	Stats() *Stats
	// Name returns a short identifier used in reports.
	Name() string
}

// Entry is a buffered packet visible to victim selectors.
type Entry struct {
	// Packet is the buffered packet.
	Packet *packet.Packet
	// ArrivedAt is when the packet entered this buffer.
	ArrivedAt float64
	// ReleaseAt is when the packet's sampled delay expires.
	ReleaseAt float64

	timer sim.Timer
	index int // position in the owning buffer's entries slice

	// owner and fireFn are bound once when the entry is first minted by its
	// buffer; recycled entries keep them, so a steady-state Admit schedules a
	// pre-existing func value and allocates nothing.
	owner  *base
	fireFn func()
}

// fire is the entry's release-timer callback: the sampled delay expired.
func (e *Entry) fire() { e.owner.release(e, false) }

// RemainingAt returns the delay remaining at time now.
func (e *Entry) RemainingAt(now float64) float64 { return e.ReleaseAt - now }

// VictimSelector picks which buffered packet a Preemptive buffer expels when
// it is full. entries is non-empty; the return value must be a valid index
// into it.
type VictimSelector interface {
	// Select returns the index of the victim among entries.
	Select(now float64, entries []*Entry, src *rng.Source) int
	// Name returns a short identifier used in reports.
	Name() string
}

// ShortestRemaining is the paper's RCAD victim rule: expel the packet with
// the shortest remaining delay, so realised delays stay closest to the
// intended distribution (§5).
type ShortestRemaining struct{}

var _ VictimSelector = ShortestRemaining{}

// Select implements VictimSelector.
func (ShortestRemaining) Select(_ float64, entries []*Entry, _ *rng.Source) int {
	best := 0
	for i, e := range entries[1:] {
		if e.ReleaseAt < entries[best].ReleaseAt {
			best = i + 1
		}
	}
	return best
}

// Name implements VictimSelector.
func (ShortestRemaining) Name() string { return "shortest-remaining" }

// LongestRemaining expels the packet with the longest remaining delay — the
// adversarial opposite of the paper's rule, included for the ablation.
type LongestRemaining struct{}

var _ VictimSelector = LongestRemaining{}

// Select implements VictimSelector.
func (LongestRemaining) Select(_ float64, entries []*Entry, _ *rng.Source) int {
	best := 0
	for i, e := range entries[1:] {
		if e.ReleaseAt > entries[best].ReleaseAt {
			best = i + 1
		}
	}
	return best
}

// Name implements VictimSelector.
func (LongestRemaining) Name() string { return "longest-remaining" }

// Oldest expels the packet that has been buffered longest (FIFO preemption).
type Oldest struct{}

var _ VictimSelector = Oldest{}

// Select implements VictimSelector.
func (Oldest) Select(_ float64, entries []*Entry, _ *rng.Source) int {
	best := 0
	for i, e := range entries[1:] {
		if e.ArrivedAt < entries[best].ArrivedAt {
			best = i + 1
		}
	}
	return best
}

// Name implements VictimSelector.
func (Oldest) Name() string { return "oldest" }

// Random expels a uniformly random buffered packet.
type Random struct{}

var _ VictimSelector = Random{}

// Select implements VictimSelector.
func (Random) Select(_ float64, entries []*Entry, src *rng.Source) int {
	return src.Intn(len(entries))
}

// Name implements VictimSelector.
func (Random) Name() string { return "random" }

// SelectorByName returns the victim selector with the given Name(). It
// returns an error for unknown names.
func SelectorByName(name string) (VictimSelector, error) {
	switch name {
	case "shortest-remaining":
		return ShortestRemaining{}, nil
	case "longest-remaining":
		return LongestRemaining{}, nil
	case "oldest":
		return Oldest{}, nil
	case "random":
		return Random{}, nil
	default:
		return nil, fmt.Errorf("buffer: unknown victim selector %q", name)
	}
}

// base carries the machinery shared by all policies: the entries slice, the
// release timers, and stats upkeep. Buffer sizes in every experiment are
// tens of slots, so linear scans over the entries slice are simpler and no
// slower than maintaining auxiliary heaps per victim rule.
type base struct {
	sched   *sim.Scheduler
	forward Forward
	entries []*Entry
	free    []*Entry // recycled entries; steady-state Admit allocates nothing
	stats   Stats
}

func newBase(sched *sim.Scheduler, forward Forward) (base, error) {
	if sched == nil {
		return base{}, fmt.Errorf("buffer: nil scheduler")
	}
	if forward == nil {
		return base{}, fmt.Errorf("buffer: nil forward function")
	}
	return base{sched: sched, forward: forward}, nil
}

func (b *base) Len() int { return len(b.entries) }

// Stats returns the buffer counters.
func (b *base) Stats() *Stats { return &b.stats }

func (b *base) observeOccupancy() {
	// Occupancy observations are monotone in time by construction
	// (scheduler time never decreases), so the error path is unreachable;
	// panic would hide a kernel bug, so surface it loudly instead.
	if err := b.stats.Occupancy.Observe(b.sched.Now(), float64(len(b.entries))); err != nil {
		panic(fmt.Sprintf("buffer: occupancy bookkeeping: %v", err))
	}
}

// acquireEntry pops a recycled entry or mints one with its release callback
// bound.
func (b *base) acquireEntry() *Entry {
	if k := len(b.free); k > 0 {
		e := b.free[k-1]
		b.free[k-1] = nil
		b.free = b.free[:k-1]
		return e
	}
	e := &Entry{owner: b}
	e.fireFn = e.fire
	return e
}

// recycleEntry drops the entry's packet reference and returns it to the pool.
func (b *base) recycleEntry(e *Entry) {
	e.Packet = nil
	b.free = append(b.free, e)
}

// insert buffers p until now+delay and schedules its release.
func (b *base) insert(p *packet.Packet, delay float64) *Entry {
	now := b.sched.Now()
	e := b.acquireEntry()
	e.Packet, e.ArrivedAt, e.ReleaseAt, e.index = p, now, now+delay, len(b.entries)
	b.entries = append(b.entries, e)
	e.timer = b.sched.At(e.ReleaseAt, e.fireFn)
	b.observeOccupancy()
	return e
}

// remove unlinks entry i in O(1) by swapping with the last element.
func (b *base) remove(e *Entry) {
	last := len(b.entries) - 1
	b.entries[e.index] = b.entries[last]
	b.entries[e.index].index = e.index
	b.entries[last] = nil
	b.entries = b.entries[:last]
}

// release forwards a buffered packet, due either to its timer expiring
// (preempted == false) or to preemption (preempted == true). The entry is
// recycled before the forward call so downstream processing that lands a
// packet back in this buffer (a preemption cascade, a short loop) reuses it
// immediately — mirroring the kernel's release-before-run idiom.
func (b *base) release(e *Entry, preempted bool) {
	if preempted {
		b.sched.Cancel(e.timer)
	}
	b.remove(e)
	b.stats.Departures++
	b.stats.HeldDelays.Add(b.sched.Now() - e.ArrivedAt)
	b.observeOccupancy()
	p := e.Packet
	b.recycleEntry(e)
	b.forward(p, preempted)
}

// Evacuate cancels every pending release and removes all buffered packets,
// returning them to the caller. The network simulator uses it to model node
// failure: a dead node's buffer contents are lost. Evacuated packets count
// as neither departures nor drops in the buffer's stats — the caller owns
// their accounting.
func (b *base) Evacuate() []*packet.Packet {
	out := make([]*packet.Packet, 0, len(b.entries))
	for i, e := range b.entries {
		b.sched.Cancel(e.timer)
		out = append(out, e.Packet)
		b.recycleEntry(e)
		b.entries[i] = nil
	}
	b.entries = b.entries[:0]
	b.observeOccupancy()
	return out
}

// Reset rearms the buffer for a fresh run on a reset scheduler: any leftover
// entries are recycled (their release timers died with the scheduler reset)
// and the stats restart from zero, in place, so the pointer Stats returned
// stays valid. The entry pool survives — a reset buffer re-enters steady
// state warm. Policies holding private randomness (Preemptive) must
// additionally be reseeded by their owner; see core.RCAD.Reset.
func (b *base) Reset() {
	for i, e := range b.entries {
		b.recycleEntry(e)
		b.entries[i] = nil
	}
	b.entries = b.entries[:0]
	b.stats = Stats{}
}

// Unlimited buffers every packet for its full sampled delay (M/M/∞).
type Unlimited struct {
	base
}

var _ Policy = (*Unlimited)(nil)

// NewUnlimited returns an unlimited buffer releasing packets through
// forward on the given scheduler.
func NewUnlimited(sched *sim.Scheduler, forward Forward) (*Unlimited, error) {
	b, err := newBase(sched, forward)
	if err != nil {
		return nil, err
	}
	return &Unlimited{base: b}, nil
}

// Admit implements Policy.
func (u *Unlimited) Admit(p *packet.Packet, delay float64) {
	u.stats.Arrivals++
	u.insert(p, delay)
}

// Name implements Policy.
func (u *Unlimited) Name() string { return "unlimited" }

// DropTail buffers at most capacity packets and drops arrivals that find the
// buffer full (M/M/k/k with blocking, §4).
type DropTail struct {
	base
	capacity int
}

var _ Policy = (*DropTail)(nil)

// NewDropTail returns a finite buffer with the given capacity (>= 1).
func NewDropTail(sched *sim.Scheduler, forward Forward, capacity int) (*DropTail, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: drop-tail capacity must be >= 1, got %d", capacity)
	}
	b, err := newBase(sched, forward)
	if err != nil {
		return nil, err
	}
	return &DropTail{base: b, capacity: capacity}, nil
}

// Admit implements Policy.
func (d *DropTail) Admit(p *packet.Packet, delay float64) {
	d.stats.Arrivals++
	if len(d.entries) >= d.capacity {
		d.stats.Drops++
		return
	}
	d.insert(p, delay)
}

// Name implements Policy.
func (d *DropTail) Name() string { return "drop-tail" }

// Capacity returns the buffer size k.
func (d *DropTail) Capacity() int { return d.capacity }

// Preemptive is the RCAD buffer (§5): at most capacity packets are held, and
// an arrival that finds the buffer full forces the selector's victim out for
// immediate transmission instead of dropping anything.
type Preemptive struct {
	base
	capacity int
	selector VictimSelector
	src      *rng.Source
}

var _ Policy = (*Preemptive)(nil)

// NewPreemptive returns a preemptive buffer with the given capacity (>= 1)
// and victim selector. src supplies randomness for stochastic selectors and
// must be non-nil.
func NewPreemptive(sched *sim.Scheduler, forward Forward, capacity int, selector VictimSelector, src *rng.Source) (*Preemptive, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: preemptive capacity must be >= 1, got %d", capacity)
	}
	if selector == nil {
		return nil, fmt.Errorf("buffer: nil victim selector")
	}
	if src == nil {
		return nil, fmt.Errorf("buffer: nil random source")
	}
	b, err := newBase(sched, forward)
	if err != nil {
		return nil, err
	}
	return &Preemptive{base: b, capacity: capacity, selector: selector, src: src}, nil
}

// Admit implements Policy.
func (r *Preemptive) Admit(p *packet.Packet, delay float64) {
	r.stats.Arrivals++
	if len(r.entries) >= r.capacity {
		victim := r.entries[r.selector.Select(r.sched.Now(), r.entries, r.src)]
		r.stats.Preemptions++
		r.release(victim, true)
	}
	r.insert(p, delay)
}

// Name implements Policy.
func (r *Preemptive) Name() string { return "preemptive" }

// Capacity returns the buffer size k.
func (r *Preemptive) Capacity() int { return r.capacity }

// Selector returns the victim-selection rule in use.
func (r *Preemptive) Selector() VictimSelector { return r.selector }
