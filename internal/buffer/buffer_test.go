package buffer

import (
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/metrics"
	"tempriv/internal/packet"
	"tempriv/internal/queueing"
	"tempriv/internal/rng"
	"tempriv/internal/sim"
)

type delivery struct {
	at        float64
	seq       uint32
	preempted bool
}

func collector(sched *sim.Scheduler) (Forward, *[]delivery) {
	var out []delivery
	return func(p *packet.Packet, preempted bool) {
		out = append(out, delivery{at: sched.Now(), seq: p.Truth.Seq, preempted: preempted})
	}, &out
}

func TestUnlimitedReleasesAfterExactDelay(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	buf, err := NewUnlimited(sched, fwd)
	if err != nil {
		t.Fatal(err)
	}
	sched.At(1, func() { buf.Admit(packet.New(1, 0, 1), 10) })
	sched.At(2, func() { buf.Admit(packet.New(1, 1, 2), 3) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(*out))
	}
	// Packet 1 (admitted t=2, delay 3) leaves at 5; packet 0 at 11.
	if (*out)[0].seq != 1 || (*out)[0].at != 5 {
		t.Fatalf("first delivery = %+v, want seq 1 at t=5", (*out)[0])
	}
	if (*out)[1].seq != 0 || (*out)[1].at != 11 {
		t.Fatalf("second delivery = %+v, want seq 0 at t=11", (*out)[1])
	}
	for _, d := range *out {
		if d.preempted {
			t.Fatal("unlimited buffer reported a preemption")
		}
	}
}

func TestUnlimitedReordersPackets(t *testing.T) {
	// §3.2: independent delays break arrival ordering. Verify that a later
	// packet with a shorter delay overtakes an earlier one.
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	buf, err := NewUnlimited(sched, fwd)
	if err != nil {
		t.Fatal(err)
	}
	sched.At(0, func() { buf.Admit(packet.New(1, 0, 0), 100) })
	sched.At(50, func() { buf.Admit(packet.New(1, 1, 50), 1) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if (*out)[0].seq != 1 {
		t.Fatal("later short-delay packet did not overtake")
	}
}

func TestUnlimitedOccupancyMatchesMMInf(t *testing.T) {
	// Poisson(λ=1) arrivals with Exp(mean 5) delays: steady-state occupancy
	// must average ρ = 5 (§4 M/M/∞ result).
	sched := sim.NewScheduler()
	buf, err := NewUnlimited(sched, func(*packet.Packet, bool) {})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	const lambda, meanDelay, horizon = 1.0, 5.0, 50000.0
	var arrive func()
	seq := uint32(0)
	arrive = func() {
		if sched.Now() >= horizon {
			return
		}
		buf.Admit(packet.New(1, seq, sched.Now()), src.Exponential(meanDelay))
		seq++
		sched.After(src.ExponentialRate(lambda), arrive)
	}
	sched.After(src.ExponentialRate(lambda), arrive)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	avg := buf.Stats().Occupancy.Average(horizon)
	if math.Abs(avg-lambda*meanDelay) > 0.3 {
		t.Fatalf("average occupancy = %v, want ≈ %v", avg, lambda*meanDelay)
	}
}

func TestDropTailDropsWhenFull(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	buf, err := NewDropTail(sched, fwd, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched.At(0, func() {
		buf.Admit(packet.New(1, 0, 0), 100)
		buf.Admit(packet.New(1, 1, 0), 100)
		buf.Admit(packet.New(1, 2, 0), 100) // full → dropped
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(*out))
	}
	s := buf.Stats()
	if s.Drops != 1 || s.Arrivals != 3 || s.Departures != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.DropRate(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("drop rate = %v, want 1/3", got)
	}
	for _, d := range *out {
		if d.seq == 2 {
			t.Fatal("dropped packet was delivered")
		}
	}
}

func TestDropTailDropRateMatchesErlangLoss(t *testing.T) {
	// M/M/k/k: empirical blocking must match E(ρ, k) (§4 eq. 5).
	const lambda, meanDelay, k, horizon = 1.0, 5.0, 3, 200000.0
	sched := sim.NewScheduler()
	buf, err := NewDropTail(sched, func(*packet.Packet, bool) {}, k)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(37)
	seq := uint32(0)
	var arrive func()
	arrive = func() {
		if sched.Now() >= horizon {
			return
		}
		buf.Admit(packet.New(1, seq, sched.Now()), src.Exponential(meanDelay))
		seq++
		sched.After(src.ExponentialRate(lambda), arrive)
	}
	sched.After(src.ExponentialRate(lambda), arrive)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	want, err := queueing.ErlangLoss(lambda*meanDelay, k)
	if err != nil {
		t.Fatal(err)
	}
	got := buf.Stats().DropRate()
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical drop rate %v, Erlang loss %v", got, want)
	}
}

func TestPreemptiveNeverDropsAndCapsOccupancy(t *testing.T) {
	const k = 3
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	buf, err := NewPreemptive(sched, fwd, k, ShortestRemaining{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	src := rng.New(2)
	for i := 0; i < n; i++ {
		i := i
		sched.At(float64(i), func() {
			buf.Admit(packet.New(1, uint32(i), float64(i)), src.Exponential(30))
			if buf.Len() > k {
				t.Errorf("occupancy %d exceeds capacity %d", buf.Len(), k)
			}
		})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != n {
		t.Fatalf("deliveries = %d, want %d (no drops ever)", len(*out), n)
	}
	s := buf.Stats()
	if s.Drops != 0 {
		t.Fatalf("preemptive buffer dropped %d packets", s.Drops)
	}
	if s.Preemptions == 0 {
		t.Fatal("overloaded preemptive buffer recorded no preemptions")
	}
	if s.Departures != n {
		t.Fatalf("departures = %d, want %d", s.Departures, n)
	}
}

func TestPreemptiveEvictsShortestRemaining(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	buf, err := NewPreemptive(sched, fwd, 2, ShortestRemaining{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sched.At(0, func() {
		buf.Admit(packet.New(1, 0, 0), 50) // releases at 50
		buf.Admit(packet.New(1, 1, 0), 20) // releases at 20 ← shortest remaining
		buf.Admit(packet.New(1, 2, 0), 99) // forces preemption
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 3 {
		t.Fatalf("deliveries = %d", len(*out))
	}
	first := (*out)[0]
	if first.seq != 1 || first.at != 0 || !first.preempted {
		t.Fatalf("victim = %+v, want seq 1 preempted at t=0", first)
	}
	// The other two complete their full delays.
	if (*out)[1].seq != 0 || (*out)[1].at != 50 || (*out)[1].preempted {
		t.Fatalf("second delivery = %+v", (*out)[1])
	}
	if (*out)[2].seq != 2 || (*out)[2].at != 99 || (*out)[2].preempted {
		t.Fatalf("third delivery = %+v", (*out)[2])
	}
}

func TestPreemptionShortensEffectiveDelay(t *testing.T) {
	// §5.3: at high load, preemptions make realised delays much shorter
	// than the sampled distribution's mean.
	const k, meanDelay = 5, 30.0
	sched := sim.NewScheduler()
	buf, err := NewPreemptive(sched, func(*packet.Packet, bool) {}, k, ShortestRemaining{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	const n = 2000
	for i := 0; i < n; i++ {
		i := i
		sched.At(float64(i), func() { // interarrival 1 ≪ mean delay 30
			buf.Admit(packet.New(1, uint32(i), float64(i)), src.Exponential(meanDelay))
		})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	held := buf.Stats().HeldDelays.Mean()
	// Steady state: k slots drain at the arrival rate, so mean hold ≈ k/λ = 5.
	if held > meanDelay/3 {
		t.Fatalf("mean held delay %v not shortened (sampled mean %v)", held, meanDelay)
	}
	if math.Abs(held-float64(k)) > 2 {
		t.Fatalf("mean held delay %v, want ≈ k/λ = %d", held, k)
	}
}

func TestVictimSelectors(t *testing.T) {
	now := 100.0
	entries := []*Entry{
		{ArrivedAt: 90, ReleaseAt: 130}, // oldest
		{ArrivedAt: 95, ReleaseAt: 105}, // shortest remaining
		{ArrivedAt: 99, ReleaseAt: 180}, // longest remaining
	}
	src := rng.New(5)
	if got := (ShortestRemaining{}).Select(now, entries, src); got != 1 {
		t.Fatalf("ShortestRemaining = %d, want 1", got)
	}
	if got := (LongestRemaining{}).Select(now, entries, src); got != 2 {
		t.Fatalf("LongestRemaining = %d, want 2", got)
	}
	if got := (Oldest{}).Select(now, entries, src); got != 0 {
		t.Fatalf("Oldest = %d, want 0", got)
	}
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[(Random{}).Select(now, entries, src)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("Random selector index %d chosen %d/3000 times", i, c)
		}
	}
}

func TestSelectorByName(t *testing.T) {
	for _, name := range []string{"shortest-remaining", "longest-remaining", "oldest", "random"} {
		s, err := SelectorByName(name)
		if err != nil {
			t.Fatalf("SelectorByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("SelectorByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := SelectorByName("newest"); err == nil {
		t.Fatal("unknown selector accepted")
	}
}

func TestConstructorValidation(t *testing.T) {
	sched := sim.NewScheduler()
	fwd := func(*packet.Packet, bool) {}
	if _, err := NewUnlimited(nil, fwd); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewUnlimited(sched, nil); err == nil {
		t.Fatal("nil forward accepted")
	}
	if _, err := NewDropTail(sched, fwd, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewPreemptive(sched, fwd, 0, ShortestRemaining{}, rng.New(1)); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewPreemptive(sched, fwd, 1, nil, rng.New(1)); err == nil {
		t.Fatal("nil selector accepted")
	}
	if _, err := NewPreemptive(sched, fwd, 1, ShortestRemaining{}, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	sched := sim.NewScheduler()
	fwd := func(*packet.Packet, bool) {}
	u, err := NewUnlimited(sched, fwd)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDropTail(sched, fwd, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPreemptive(sched, fwd, 1, ShortestRemaining{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "unlimited" || d.Name() != "drop-tail" || p.Name() != "preemptive" {
		t.Fatalf("names = %q %q %q", u.Name(), d.Name(), p.Name())
	}
	if d.Capacity() != 1 || p.Capacity() != 1 {
		t.Fatal("capacity accessors wrong")
	}
	if p.Selector().Name() != "shortest-remaining" {
		t.Fatal("selector accessor wrong")
	}
}

// Property: conservation — for any admission pattern, arrivals equal
// departures + drops + still-buffered, and a preemptive buffer never holds
// more than its capacity.
func TestConservationProperty(t *testing.T) {
	f := func(delays []uint8, capRaw uint8, kind uint8) bool {
		if len(delays) == 0 {
			return true
		}
		capacity := int(capRaw%8) + 1
		sched := sim.NewScheduler()
		fwd := func(*packet.Packet, bool) {}
		var buf Policy
		var err error
		switch kind % 3 {
		case 0:
			buf, err = NewUnlimited(sched, fwd)
		case 1:
			buf, err = NewDropTail(sched, fwd, capacity)
		default:
			buf, err = NewPreemptive(sched, fwd, capacity, ShortestRemaining{}, rng.New(9))
		}
		if err != nil {
			return false
		}
		for i, d := range delays {
			i, d := i, d
			sched.At(float64(i), func() {
				buf.Admit(packet.New(1, uint32(i), float64(i)), float64(d))
			})
		}
		// Run only half the horizon so some packets are still buffered.
		if err := sched.RunUntil(float64(len(delays)) / 2); err != nil {
			return false
		}
		s := buf.Stats()
		if s.Arrivals != s.Departures+s.Drops+uint64(buf.Len()) {
			return false
		}
		if kind%3 == 2 && buf.Len() > capacity {
			return false
		}
		// Drain and re-check.
		if err := sched.Run(); err != nil {
			return false
		}
		return s.Arrivals == s.Departures+s.Drops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEvacuateCancelsAndReturnsAll(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	buf, err := NewUnlimited(sched, fwd)
	if err != nil {
		t.Fatal(err)
	}
	sched.At(0, func() {
		for i := 0; i < 5; i++ {
			buf.Admit(packet.New(1, uint32(i), 0), 100)
		}
	})
	var evacuated []*packet.Packet
	sched.At(10, func() { evacuated = buf.Evacuate() })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(evacuated) != 5 {
		t.Fatalf("evacuated %d, want 5", len(evacuated))
	}
	if len(*out) != 0 {
		t.Fatalf("%d packets forwarded after evacuation", len(*out))
	}
	if buf.Len() != 0 {
		t.Fatalf("buffer still holds %d", buf.Len())
	}
	// The release events were cancelled: the simulation ended at t=10.
	if sched.Now() != 10 {
		t.Fatalf("simulation ran to %v, want 10", sched.Now())
	}
	// Stats: evacuated packets are neither departures nor drops.
	s := buf.Stats()
	if s.Arrivals != 5 || s.Departures != 0 || s.Drops != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEvacuateEmptyBuffer(t *testing.T) {
	sched := sim.NewScheduler()
	buf, err := NewPreemptive(sched, func(*packet.Packet, bool) {}, 3, ShortestRemaining{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.Evacuate(); len(got) != 0 {
		t.Fatalf("evacuated %d from empty buffer", len(got))
	}
}

func TestBufferUsableAfterEvacuate(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	buf, err := NewDropTail(sched, fwd, 4)
	if err != nil {
		t.Fatal(err)
	}
	sched.At(0, func() {
		buf.Admit(packet.New(1, 0, 0), 50)
		_ = buf.Evacuate()
		buf.Admit(packet.New(1, 1, 0), 5)
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 1 || (*out)[0].seq != 1 || (*out)[0].at != 5 {
		t.Fatalf("post-evacuation delivery = %+v", *out)
	}
}

// TestBurkeTheoremDepartures validates the §4 tandem argument empirically:
// the departure process of an M/M/∞ delaying buffer fed by Poisson(λ)
// arrivals is itself Poisson(λ) — exponential inter-departures with mean
// 1/λ and unit coefficient of variation.
func TestBurkeTheoremDepartures(t *testing.T) {
	const lambda, meanDelay, horizon = 0.5, 30.0, 100000.0
	sched := sim.NewScheduler()
	var departures []float64
	buf, err := NewUnlimited(sched, func(*packet.Packet, bool) {
		departures = append(departures, sched.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(71)
	seq := uint32(0)
	var arrive func()
	arrive = func() {
		if sched.Now() >= horizon {
			return
		}
		buf.Admit(packet.New(1, seq, sched.Now()), src.Exponential(meanDelay))
		seq++
		sched.After(src.ExponentialRate(lambda), arrive)
	}
	sched.After(src.ExponentialRate(lambda), arrive)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// Skip the warmup (buffer filling to steady state).
	warm := departures[len(departures)/10:]
	var w metrics.Welford
	for i := 1; i < len(warm); i++ {
		w.Add(warm[i] - warm[i-1])
	}
	if math.Abs(w.Mean()-1/lambda) > 0.1 {
		t.Fatalf("inter-departure mean %v, want %v (Burke: rate preserved)", w.Mean(), 1/lambda)
	}
	cv := w.Std() / w.Mean()
	if math.Abs(cv-1) > 0.05 {
		t.Fatalf("inter-departure CV %v, want ≈ 1 (Burke: Poisson departures)", cv)
	}
}

// TestTandemBuffersBothPoisson chains two M/M/∞ buffers: by Burke's theorem
// the second sees Poisson arrivals too, so both occupancies average their
// own ρ (§4's tandem-network model).
func TestTandemBuffersBothPoisson(t *testing.T) {
	const lambda, mean1, mean2, horizon = 0.5, 20.0, 40.0, 100000.0
	sched := sim.NewScheduler()
	delaySrc := rng.New(74)
	var second *Unlimited
	first, err := NewUnlimited(sched, func(p *packet.Packet, _ bool) {
		second.Admit(p, delaySrc.Exponential(mean2))
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err = NewUnlimited(sched, func(*packet.Packet, bool) {})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(73)
	seq := uint32(0)
	var arrive func()
	arrive = func() {
		if sched.Now() >= horizon {
			return
		}
		first.Admit(packet.New(1, seq, sched.Now()), src.Exponential(mean1))
		seq++
		sched.After(src.ExponentialRate(lambda), arrive)
	}
	sched.After(src.ExponentialRate(lambda), arrive)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	occ1 := first.Stats().Occupancy.Average(horizon)
	occ2 := second.Stats().Occupancy.Average(horizon)
	if math.Abs(occ1-lambda*mean1) > 0.5 {
		t.Fatalf("first buffer occupancy %v, want ≈ %v", occ1, lambda*mean1)
	}
	if math.Abs(occ2-lambda*mean2) > 0.8 {
		t.Fatalf("second buffer occupancy %v, want ≈ %v (Burke tandem)", occ2, lambda*mean2)
	}
}

// TestResetClearsStateAndWarmsPool drives a buffer through a full run,
// resets it alongside its scheduler, and requires a second run to replay a
// fresh buffer's behaviour exactly while the steady-state admit/release
// cycle stays allocation-free on the warmed entry pool.
func TestResetClearsStateAndWarmsPool(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	buf, err := NewDropTail(sched, fwd, 4)
	if err != nil {
		t.Fatal(err)
	}
	load := func() {
		for i := 0; i < 20; i++ {
			i := i
			sched.At(float64(i), func() { buf.Admit(packet.New(1, uint32(i), sched.Now()), 3) })
		}
		if err := sched.Run(); err != nil {
			t.Fatal(err)
		}
	}
	load()
	want := append([]delivery(nil), (*out)...)
	wantStats := *buf.Stats()

	sched.Reset()
	buf.Reset()
	if got := *buf.Stats(); got != (Stats{}) {
		t.Fatalf("stats after Reset: %+v", got)
	}
	if buf.Len() != 0 {
		t.Fatalf("occupancy after Reset: %d", buf.Len())
	}
	*out = (*out)[:0]
	load()
	if len(*out) != len(want) {
		t.Fatalf("replay delivered %d packets, fresh delivered %d", len(*out), len(want))
	}
	for i := range want {
		if (*out)[i] != want[i] {
			t.Fatalf("replay delivery %d = %+v, fresh %+v", i, (*out)[i], want[i])
		}
	}
	if got := *buf.Stats(); got != wantStats {
		t.Fatalf("replay stats %+v, fresh %+v", got, wantStats)
	}

	// Steady state on the warm pool: admit/release cycles allocate nothing.
	sched.Reset()
	buf.Reset()
	p := packet.New(1, 0, 0)
	allocs := testing.AllocsPerRun(200, func() {
		buf.Admit(p, 1)
		for sched.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("warm admit/release cycle allocates %v times per op, want 0", allocs)
	}
}

// TestResetSurvivesMidFlightEntries resets a buffer that still holds
// packets (timers pending) and checks the entries are recycled, not leaked
// into the next run.
func TestResetSurvivesMidFlightEntries(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	buf, err := NewUnlimited(sched, fwd)
	if err != nil {
		t.Fatal(err)
	}
	sched.At(0, func() {
		for i := 0; i < 8; i++ {
			buf.Admit(packet.New(1, uint32(i), 0), 100)
		}
	})
	if err := sched.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8 {
		t.Fatalf("occupancy before reset = %d, want 8", buf.Len())
	}
	sched.Reset()
	buf.Reset()
	if buf.Len() != 0 {
		t.Fatalf("occupancy after reset = %d", buf.Len())
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 0 {
		t.Fatalf("pre-reset packets delivered after reset: %d", len(*out))
	}
}

// BenchmarkWarmAdmitRelease measures the pooled admit/release fast path the
// engine hits for every forwarded packet once the entry pool is warm.
func BenchmarkWarmAdmitRelease(b *testing.B) {
	sched := sim.NewScheduler()
	buf, err := NewUnlimited(sched, func(*packet.Packet, bool) {})
	if err != nil {
		b.Fatal(err)
	}
	p := packet.New(1, 0, 0)
	buf.Admit(p, 1)
	for sched.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Admit(p, 1)
		for sched.Step() {
		}
	}
}
