package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"tempriv/internal/packet"
)

// Sample is one sim-time snapshot of a running simulation: the §4 queue
// state an analyst (or a queue-state adversary) watches evolve. The network
// layer produces one Sample every Config.SampleEvery simulated time units.
type Sample struct {
	// At is the simulated time of the snapshot.
	At float64 `json:"at"`
	// Created, Delivered, Dropped and Retransmits are cumulative packet
	// counters up to At. Dropped totals every loss cause: buffer drops,
	// link-layer abandonment, node failures and suppressed duplicates.
	Created     uint64 `json:"created"`
	Delivered   uint64 `json:"delivered"`
	Dropped     uint64 `json:"dropped"`
	Retransmits uint64 `json:"retransmits"`
	// Buffered is the total packet count across all node buffers at At.
	Buffered int `json:"buffered"`
	// InFlight is created − delivered − dropped: packets somewhere between
	// their source and the sink (buffered or crossing a link).
	InFlight int `json:"in_flight"`
	// ArrivalRate is the sink arrival rate the adversary observes over the
	// window since the previous sample (deliveries per time unit).
	ArrivalRate float64 `json:"arrival_rate"`
	// Occupancy maps each buffering node to its buffered packet count at At.
	Occupancy map[packet.NodeID]int `json:"occupancy,omitempty"`
	// HeapAllocBytes is the process's live heap at sampling time, so long
	// runs expose memory growth on the same time axis as queue state.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes,omitempty"`
}

// Emitter consumes the sampler's time series. Emitters that buffer output
// also implement io.Closer; callers must Close them after the run and
// surface the error (a dropped flush silently truncates the series).
type Emitter interface {
	Emit(s Sample) error
}

// Memory retains every sample in order — the in-process emitter used by
// tests and by experiments that post-process the series. It is safe for
// concurrent use.
type Memory struct {
	mu      sync.Mutex
	samples []Sample
}

var _ Emitter = (*Memory)(nil)

// Emit implements Emitter.
func (m *Memory) Emit(s Sample) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = append(m.samples, s)
	return nil
}

// Samples returns the recorded samples in emit order. The returned slice is
// a copy.
func (m *Memory) Samples() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Len returns the number of recorded samples.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples)
}

// JSONL streams samples as JSON Lines through an internal buffered writer.
// Close flushes the buffer and must be called on every exit path; Emit and
// Close return the first underlying write error.
type JSONL struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

var _ Emitter = (*JSONL)(nil)
var _ io.Closer = (*JSONL)(nil)

// NewJSONL returns an emitter writing one JSON object per sample to w. The
// caller retains ownership of w (Close flushes but does not close it).
func NewJSONL(w io.Writer) (*JSONL, error) {
	if w == nil {
		return nil, errors.New("telemetry: nil writer")
	}
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}, nil
}

// Emit implements Emitter. After the first error, subsequent samples are
// dropped and the error is returned again.
func (j *JSONL) Emit(s Sample) error {
	if j.err != nil {
		return j.err
	}
	if err := j.enc.Encode(s); err != nil {
		j.err = fmt.Errorf("telemetry: encoding sample: %w", err)
	}
	return j.err
}

// Close flushes the buffered samples and returns the first write error.
func (j *JSONL) Close() error {
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = fmt.Errorf("telemetry: flushing samples: %w", err)
	}
	return j.err
}

// PromFile rewrites a file with a registry's Prometheus text snapshot on
// every sample — the textfile-collector pattern: a node-exporter (or a
// human with cat) reads the latest queue state of a long run without the
// simulator serving HTTP.
type PromFile struct {
	reg  *Registry
	path string
}

var _ Emitter = (*PromFile)(nil)

// NewPromFile returns an emitter snapshotting reg to path on every sample.
func NewPromFile(reg *Registry, path string) (*PromFile, error) {
	if reg == nil {
		return nil, errors.New("telemetry: nil registry")
	}
	if path == "" {
		return nil, errors.New("telemetry: empty snapshot path")
	}
	return &PromFile{reg: reg, path: path}, nil
}

// Emit implements Emitter: it atomically replaces the snapshot file.
func (p *PromFile) Emit(Sample) error {
	tmp := p.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("telemetry: snapshot: %w", err)
	}
	err = p.reg.WriteProm(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("telemetry: snapshot: %w", err)
	}
	return os.Rename(tmp, p.path)
}

// MultiEmitter fans samples out to several emitters, stopping at the first
// error. Closing it closes every wrapped emitter that implements io.Closer
// and returns the first close error.
func MultiEmitter(emitters ...Emitter) Emitter {
	return multiEmitter(emitters)
}

type multiEmitter []Emitter

// Emit implements Emitter.
func (m multiEmitter) Emit(s Sample) error {
	for _, e := range m {
		if e == nil {
			continue
		}
		if err := e.Emit(s); err != nil {
			return err
		}
	}
	return nil
}

// Close implements io.Closer.
func (m multiEmitter) Close() error {
	var first error
	for _, e := range m {
		if c, ok := e.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Config enables telemetry on a simulation run (network.Config.Telemetry).
// Registry and the sampler are independent: either may be set alone.
type Config struct {
	// Registry receives the live metric stream (counters on the simulation
	// hot path, the delivery-latency histogram, the sim-clock gauge). Nil
	// disables live metrics at near-zero cost.
	Registry *Registry
	// SampleEvery is the sim-time sampling period of the queue-state
	// sampler; 0 (or a nil Emitter) disables sampling.
	SampleEvery float64
	// Emitter receives one Sample every SampleEvery simulated time units.
	Emitter Emitter
	// SampleHeap additionally reads runtime heap statistics into each
	// sample (a runtime.ReadMemStats per sample; cheap at typical sampling
	// rates, off by default for exact-determinism comparisons of emitted
	// bytes across hosts).
	SampleHeap bool
}

// Sampling reports whether the sim-time sampler is enabled.
func (c *Config) Sampling() bool {
	return c != nil && c.SampleEvery > 0 && c.Emitter != nil
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("telemetry: negative sample period %v", c.SampleEvery)
	}
	if c.SampleEvery > 0 && c.Emitter == nil {
		return errors.New("telemetry: SampleEvery set without an Emitter")
	}
	return nil
}
