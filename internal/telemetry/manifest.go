package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Manifest records the provenance of one simulation run: what configuration
// produced it (as a stable fingerprint), how it was seeded, and how the run
// performed. Two runs with the same fingerprint and seed are replays of the
// same experiment; the perf fields give BENCH_*.json its data points.
type Manifest struct {
	// ConfigFingerprint is the hex SHA-256 of the canonical JSON encoding
	// of the run configuration (see Fingerprint). Identical configurations
	// fingerprint identically across processes and hosts.
	ConfigFingerprint string `json:"config_fingerprint"`
	// Seed is the run's RNG seed; fingerprint+seed fully determines the
	// simulated outcome.
	Seed int64 `json:"seed"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
	// SimDuration is the simulated time span covered by the run.
	SimDuration float64 `json:"sim_duration"`
	// Events is the number of discrete events the scheduler processed.
	Events int `json:"events"`
	// Deliveries is the number of packets that reached the sink.
	Deliveries int `json:"deliveries"`
	// WallSeconds is the real time the run took.
	WallSeconds float64 `json:"wall_seconds"`
	// EventsPerSec is Events/WallSeconds — the kernel's throughput.
	EventsPerSec float64 `json:"events_per_sec"`
	// PeakHeapBytes is the largest live-heap reading observed during the
	// run (at sampling points when the sampler runs, else at completion).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// Fingerprint returns the hex SHA-256 of v's canonical JSON encoding.
// encoding/json writes map keys in sorted order and struct fields in
// declaration order, so equal values always hash equally.
func Fingerprint(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("telemetry: fingerprinting config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// WriteJSON writes the manifest as indented JSON to path.
func (m *Manifest) WriteJSON(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding manifest: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("telemetry: writing manifest: %w", err)
	}
	return nil
}

// HeapAlloc returns the current live-heap size. It is a convenience wrapper
// so callers outside this package don't import runtime for one field.
func HeapAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
