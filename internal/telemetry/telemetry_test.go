package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tempriv/internal/packet"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value() = %g, want 1.5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
	)
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

func TestNilRegistryReturnsNilHandles(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil registry must write nothing")
	}
}

// TestDisabledPathAllocs pins the disabled telemetry path at zero
// allocations: a nil registry lookup plus every nil-handle operation must
// not allocate, so the simulation hot path can call them unconditionally.
func TestDisabledPathAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("tempriv_packets_created_total")
	g := r.Gauge("tempriv_sim_time")
	h := r.Histogram("tempriv_delivery_latency")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Counter("tempriv_packets_created_total").Inc()
		c.Inc()
		c.Add(2)
		g.Set(3.5)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocated %v times per run, want 0", allocs)
	}
}

func TestEnabledHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("enabled handle operations allocated %v times per run, want 0", allocs)
	}
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return same counter")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("same name must return same gauge")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatal("same name must return same histogram")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %g, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestHistBucketEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0},
		{0, 0},
		{math.NaN(), 0},
		{math.Ldexp(1, histMinExp) / 4, 0}, // below the smallest edge
		{1, 1 - histMinExp + 0},            // Ilogb(1)=0 → bucket 17 with histMinExp=-16
		{1.999, -histMinExp + 1},
		{2, -histMinExp + 2},
		{math.MaxFloat64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite positive value must land in a bucket whose bounds contain it.
	for _, v := range []float64{0.001, 0.5, 1, 3, 10, 1e6} {
		i := histBucket(v)
		if v >= histUpper(i) {
			t.Errorf("value %g ≥ upper bound %g of its bucket %d", v, histUpper(i), i)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(1.0) // all mass in one bucket: [1, 2)
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 2 {
		t.Fatalf("p50 = %g, want within [1, 2)", p50)
	}
	if h.Quantile(-0.1) != 0 || h.Quantile(1.1) != 0 {
		t.Fatal("out-of-range quantiles must read 0")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must read 0")
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("tempriv_packets_delivered_total").Add(42)
	r.Gauge("tempriv_sim_time").Set(12.5)
	h := r.Histogram("tempriv_delivery_latency")
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(1.5)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE tempriv_packets_delivered_total counter\ntempriv_packets_delivered_total 42\n",
		"# TYPE tempriv_sim_time gauge\ntempriv_sim_time 12.5\n",
		"# TYPE tempriv_delivery_latency histogram\n",
		`tempriv_delivery_latency_bucket{le="1"} 1`,
		`tempriv_delivery_latency_bucket{le="2"} 3`,
		`tempriv_delivery_latency_bucket{le="+Inf"} 3`,
		"tempriv_delivery_latency_sum 3.5\n",
		"tempriv_delivery_latency_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}

	// Deterministic: a second snapshot of unchanged state is identical.
	var buf2 bytes.Buffer
	if err := r.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("prom snapshots of unchanged state differ")
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c 1\n") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(2)
	snap := r.Snapshot()
	if snap["c"] != uint64(3) {
		t.Fatalf("snapshot c = %v", snap["c"])
	}
	if snap["g"] != 1.5 {
		t.Fatalf("snapshot g = %v", snap["g"])
	}
	hm, ok := snap["h"].(map[string]any)
	if !ok || hm["count"] != uint64(1) {
		t.Fatalf("snapshot h = %v", snap["h"])
	}
}

func TestMemoryEmitter(t *testing.T) {
	var m Memory
	for i := 0; i < 3; i++ {
		if err := m.Emit(Sample{At: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Samples()
	if len(got) != 3 || m.Len() != 3 {
		t.Fatalf("recorded %d samples, want 3", len(got))
	}
	for i, s := range got {
		if s.At != float64(i) {
			t.Fatalf("sample %d at %g", i, s.At)
		}
	}
}

func TestJSONLEmitterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j, err := NewJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []Sample{
		{At: 1, Created: 2, Delivered: 1, Buffered: 1, InFlight: 1, ArrivalRate: 0.5,
			Occupancy: map[packet.NodeID]int{3: 1}},
		{At: 2, Created: 4, Delivered: 3},
	}
	for _, s := range in {
		if err := j.Emit(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var out []Sample
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var s Sample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line not parseable: %v", err)
		}
		out = append(out, s)
	}
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d samples, want %d", len(out), len(in))
	}
	if out[0].Occupancy[3] != 1 || out[1].Created != 4 {
		t.Fatalf("round trip mangled samples: %+v", out)
	}
}

type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestJSONLEmitterSurfacesWriteError(t *testing.T) {
	boom := errors.New("disk full")
	j, err := NewJSONL(failWriter{boom})
	if err != nil {
		t.Fatal(err)
	}
	// Small samples sit in the bufio buffer, so the failure surfaces at Close.
	if err := j.Emit(Sample{At: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want wrapped %v", err, boom)
	}
	// Once failed, the error sticks.
	if err := j.Emit(Sample{At: 2}); !errors.Is(err, boom) {
		t.Fatalf("Emit after failure = %v, want wrapped %v", err, boom)
	}
	if _, err := NewJSONL(nil); err == nil {
		t.Fatal("nil writer accepted")
	}
}

func TestPromFileEmitter(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	path := filepath.Join(t.TempDir(), "metrics.prom")
	p, err := NewPromFile(r, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Emit(Sample{At: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "c 7\n") {
		t.Fatalf("snapshot file = %q", b)
	}
	// A second emit replaces the snapshot.
	r.Counter("c").Inc()
	if err := p.Emit(Sample{At: 2}); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if !strings.Contains(string(b), "c 8\n") {
		t.Fatalf("snapshot not replaced: %q", b)
	}

	if _, err := NewPromFile(nil, path); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := NewPromFile(r, ""); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestMultiEmitter(t *testing.T) {
	var a, b Memory
	var buf bytes.Buffer
	j, _ := NewJSONL(&buf)
	m := MultiEmitter(&a, nil, &b, j)
	if err := m.Emit(Sample{At: 1}); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("fan-out missed an emitter")
	}
	if err := m.(interface{ Close() error }).Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("Close did not flush the wrapped JSONL emitter")
	}
}

func TestConfigValidate(t *testing.T) {
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if nilCfg.Sampling() {
		t.Fatal("nil config must not sample")
	}
	if err := (&Config{SampleEvery: -1}).Validate(); err == nil {
		t.Fatal("negative period accepted")
	}
	if err := (&Config{SampleEvery: 1}).Validate(); err == nil {
		t.Fatal("sampler without emitter accepted")
	}
	cfg := &Config{SampleEvery: 1, Emitter: &Memory{}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !cfg.Sampling() {
		t.Fatal("valid sampler config must report Sampling")
	}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	cfg := map[string]any{"seed": int64(1), "policy": "rcad", "tau": 4.0}
	a, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(map[string]any{"tau": 4.0, "policy": "rcad", "seed": int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config fingerprinted differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(a))
	}
	c, err := Fingerprint(map[string]any{"seed": int64(2), "policy": "rcad", "tau": 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different configs fingerprinted identically")
	}
	if _, err := Fingerprint(func() {}); err == nil {
		t.Fatal("unencodable value accepted")
	}
}

func TestManifestWriteJSON(t *testing.T) {
	m := &Manifest{ConfigFingerprint: "abc", Seed: 7, GoVersion: "go1.22", Events: 10}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != *m {
		t.Fatalf("round trip = %+v, want %+v", got, *m)
	}
}

func TestHeapAlloc(t *testing.T) {
	if HeapAlloc() == 0 {
		t.Fatal("heap alloc reading must be non-zero in a live process")
	}
}
