// Package telemetry is the simulator's run-observability layer: a
// thread-safe registry of live metrics (counters, gauges, log-bucketed
// histograms), a sim-time sampler that turns a running simulation into an
// append-only time series (see Sample and the emitters), and run manifests
// that fingerprint what produced a result (see Manifest).
//
// The paper's evaluation hinges on time-resolved internals — buffer
// occupancy over time (§4), end-to-end latency and adversary error (§5) —
// and the timing-side-channel literature quantifies leakage from exactly
// these queue-state time series, so the sampler doubles as the substrate
// for future adversary models.
//
// Telemetry is strictly opt-in and the disabled path is near-free: a nil
// *Registry hands out nil metric handles, and every handle method is a
// nil-guarded no-op that performs zero allocations (pinned by an
// AllocsPerRun regression test). The simulation hot path therefore calls
// handles unconditionally.
//
// The registry is safe for concurrent use: the simulation goroutine writes
// metrics while an HTTP scrape (Registry.ServeHTTP serves the Prometheus
// text format) or an expvar dump reads them.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter is a valid
// no-op handle, so callers never branch on whether telemetry is enabled.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a valid no-op
// handle.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: bucket i (1 ≤ i ≤ histBuckets−1) counts values in
// [2^(i−1+histMinExp), 2^(i+histMinExp)); bucket 0 holds zero, negative and
// sub-2^histMinExp values. With histMinExp = −16 and 64 buckets the range
// 1.5e−5 … 1.4e14 is covered, far beyond any simulated latency.
const (
	histBuckets = 64
	histMinExp  = -16
)

// Histogram counts observations in logarithmic (power-of-two) buckets — the
// standard latency-histogram layout: constant relative error, fixed memory,
// lock-free updates. A nil *Histogram is a valid no-op handle.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// histBucket maps a value onto its bucket index.
func histBucket(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	i := math.Ilogb(v) - histMinExp + 1
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// histUpper returns the exclusive upper bound of bucket i (the Prometheus
// "le" edge).
func histUpper(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, i+histMinExp)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from bucket geometric
// midpoints. It returns 0 for an empty or nil histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 || math.IsNaN(q) {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := 0.0
	for i := 0; i < histBuckets; i++ {
		cum += float64(h.buckets[i].Load())
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := math.Ldexp(1, i-1+histMinExp)
			return lo * math.Sqrt2 // geometric midpoint of [lo, 2lo)
		}
	}
	return histUpper(histBuckets - 2)
}

// Registry is a named collection of metrics. The zero value is not usable;
// create one with NewRegistry. A nil *Registry is the disabled state: every
// lookup returns a nil handle and every nil handle is a no-op, so code
// instrumented against a registry pays only a nil check when telemetry is
// off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	infos    map[string]map[string]string
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		infos:    make(map[string]map[string]string),
	}
}

// Info publishes an info metric — the Prometheus idiom for identity data:
// a gauge with constant value 1 whose labels carry the facts (for example
// tempriv_build_info{version=...,go_version=...} 1). Re-registering a name
// replaces its labels. No-op on a nil registry.
func (r *Registry) Info(name string, labels map[string]string) {
	if r == nil {
		return
	}
	copied := make(map[string]string, len(labels))
	for k, v := range labels {
		copied[k] = v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos[name] = copied
}

// Counter returns the counter with the given name, creating it on first
// use. On a nil registry it returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use. On
// a nil registry it returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use. On a nil registry it returns a nil (no-op) handle.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteProm writes the registry's current state in the Prometheus text
// exposition format (the snapshot served by ServeHTTP). Metric names are
// emitted in sorted order so output is deterministic.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range sortedKeys(r.counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value())
	}
	for _, name := range sortedKeys(r.gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", name, name, r.gauges[name].Value())
	}
	for _, name := range sortedKeys(r.infos) {
		labels := r.infos[name]
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s{", name, name)
		for i, k := range sortedKeys(labels) {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", k, labels[k])
		}
		b.WriteString("} 1\n")
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue // elide empty buckets; cumulative counts stay exact
			}
			cum += n
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatLE(histUpper(i)), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatLE renders a histogram bucket edge for the "le" label.
func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// ServeHTTP implements http.Handler, serving the Prometheus text snapshot —
// mount the registry at /metrics next to net/http/pprof for long runs.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteProm(w)
}

// Snapshot returns the registry's current values as a plain map — the shape
// published through expvar (histograms report count/sum/p50/p95/p99).
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.infos))
	for name, labels := range r.infos {
		copied := make(map[string]string, len(labels))
		for k, v := range labels {
			copied[k] = v
		}
		out[name] = copied
	}
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = map[string]any{
			"count": h.Count(),
			"sum":   h.Sum(),
			"p50":   h.Quantile(0.50),
			"p95":   h.Quantile(0.95),
			"p99":   h.Quantile(0.99),
		}
	}
	return out
}
