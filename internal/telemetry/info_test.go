package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestInfoMetricPromAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Info("tempriv_build_info", map[string]string{
		"version":    "v1.2.3",
		"go_version": "go1.24.0",
		"revision":   "abc123",
	})
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	// Labels render sorted, value is the constant 1.
	want := `# TYPE tempriv_build_info gauge
tempriv_build_info{go_version="go1.24.0",revision="abc123",version="v1.2.3"} 1
`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("WriteProm output:\n%s\nwant to contain:\n%s", sb.String(), want)
	}

	snap := reg.Snapshot()
	labels, ok := snap["tempriv_build_info"].(map[string]string)
	if !ok || labels["version"] != "v1.2.3" {
		t.Fatalf("snapshot info metric: %#v", snap["tempriv_build_info"])
	}
	// The snapshot copy must be isolated from the registry's state.
	labels["version"] = "mutated"
	snap2 := reg.Snapshot()
	if snap2["tempriv_build_info"].(map[string]string)["version"] != "v1.2.3" {
		t.Fatal("snapshot mutation leaked into the registry")
	}
}

func TestInfoReplaceAndNilRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Info("x_info", map[string]string{"a": "1"})
	reg.Info("x_info", map[string]string{"b": "2"})
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `a="1"`) || !strings.Contains(sb.String(), `b="2"`) {
		t.Fatalf("re-registering did not replace labels:\n%s", sb.String())
	}

	var nilReg *Registry
	nilReg.Info("x_info", map[string]string{"a": "1"}) // must not panic
}

// TestHistogramConcurrentObserveSnapshot drives Observe from several
// goroutines while Snapshot, WriteProm and Quantile read concurrently, and
// then checks nothing was lost. Run with -race this doubles as the data-race
// gate for the histogram's lock-free update path.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers hammer every read path until the writers finish.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = reg.Snapshot()
				_ = h.Quantile(0.99)
				var sb strings.Builder
				_ = reg.WriteProm(&sb)
			}
		}()
	}
	var writeWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writeWG.Add(1)
		go func(g int) {
			defer writeWG.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) / 1000)
			}
		}(g)
	}
	writeWG.Wait()
	close(stop)
	wg.Wait()

	if got := h.Count(); got != writers*perG {
		t.Fatalf("count = %d after concurrent observes, want %d", got, writers*perG)
	}
	// The bucket totals must also account for every observation.
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lat_count 40000") {
		t.Fatalf("prom output missing exact count:\n%s", sb.String())
	}
}
