// Package mix implements the anonymity-network comparators from the
// paper's related work (§6): Chaum-style batching mixes. They exist so the
// evaluation can quantify the paper's claim that mix techniques, designed
// to decorrelate input/output traffic at a single node, "do not extend to
// networks of queues" the way RCAD's per-packet delaying does.
//
//   - ThresholdMix (a "pool mix", Diaz & Preneel): accumulate messages
//     until batch+pool are buffered, then flush a random batch while
//     retaining pool random messages.
//   - TimedMix: flush the whole buffer every interval, in random order.
//   - An SG-Mix (Kesdogan's stop-and-go mix, which Danezis proved optimal
//     for a given mean delay) delays each message independently with an
//     exponential — in this codebase that is exactly buffer.Unlimited with
//     an exponential delay distribution, so it needs no separate type; the
//     abl-mix experiment labels that combination "sg-mix".
//
// All mixes implement buffer.Policy so they drop into the network simulator
// via network.Config.CustomPolicy. Batching mixes ignore the sampled
// per-packet delay argument: their release times are driven by the batch
// rule, not by a per-packet distribution.
package mix

import (
	"fmt"
	"math"

	"tempriv/internal/buffer"
	"tempriv/internal/metrics"
	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/sim"
)

// entry is one buffered message.
type entry struct {
	p         *packet.Packet
	arrivedAt float64
}

// base holds the bookkeeping shared by the batching mixes.
type base struct {
	sched   *sim.Scheduler
	forward buffer.Forward
	src     *rng.Source
	entries []entry
	stats   buffer.Stats
}

func newBase(sched *sim.Scheduler, forward buffer.Forward, src *rng.Source) (base, error) {
	if sched == nil {
		return base{}, fmt.Errorf("mix: nil scheduler")
	}
	if forward == nil {
		return base{}, fmt.Errorf("mix: nil forward function")
	}
	if src == nil {
		return base{}, fmt.Errorf("mix: nil random source")
	}
	return base{sched: sched, forward: forward, src: src}, nil
}

func (b *base) Len() int { return len(b.entries) }

// Stats returns the mix's counters; batch releases are not preemptions, so
// only Arrivals/Departures/Occupancy/HeldDelays are populated.
func (b *base) Stats() *buffer.Stats { return &b.stats }

func (b *base) observeOccupancy() {
	if err := b.stats.Occupancy.Observe(b.sched.Now(), float64(len(b.entries))); err != nil {
		panic(fmt.Sprintf("mix: occupancy bookkeeping: %v", err))
	}
}

// Evacuate removes all buffered messages and returns them — the
// node-failure path (see buffer.Policy implementations). Stats count them
// as neither departures nor drops.
func (b *base) Evacuate() []*packet.Packet {
	out := make([]*packet.Packet, 0, len(b.entries))
	for _, e := range b.entries {
		out = append(out, e.p)
	}
	b.entries = b.entries[:0]
	b.observeOccupancy()
	return out
}

func (b *base) admit(p *packet.Packet) {
	b.stats.Arrivals++
	b.entries = append(b.entries, entry{p: p, arrivedAt: b.sched.Now()})
	b.observeOccupancy()
}

// releaseAt forwards entry index i immediately and unlinks it.
func (b *base) release(i int) {
	e := b.entries[i]
	last := len(b.entries) - 1
	b.entries[i] = b.entries[last]
	b.entries = b.entries[:last]
	b.stats.Departures++
	b.stats.HeldDelays.Add(b.sched.Now() - e.arrivedAt)
	b.observeOccupancy()
	b.forward(e.p, false)
}

// flushRandom releases n random buffered messages (all of them when
// n >= Len) in random order.
func (b *base) flushRandom(n int) {
	if n > len(b.entries) {
		n = len(b.entries)
	}
	for i := 0; i < n; i++ {
		b.release(b.src.Intn(len(b.entries)))
	}
}

// ThresholdMix is a threshold pool mix: messages accumulate until
// batch+pool are buffered; then batch random messages flush immediately and
// pool random messages stay behind to mix with future traffic.
type ThresholdMix struct {
	base
	batch int
	pool  int
}

var _ buffer.Policy = (*ThresholdMix)(nil)

// NewThresholdMix returns a pool mix flushing batch messages (>= 1) once
// batch+pool are buffered, retaining pool (>= 0).
func NewThresholdMix(sched *sim.Scheduler, forward buffer.Forward, batch, pool int, src *rng.Source) (*ThresholdMix, error) {
	if batch < 1 {
		return nil, fmt.Errorf("mix: batch must be >= 1, got %d", batch)
	}
	if pool < 0 {
		return nil, fmt.Errorf("mix: pool must be >= 0, got %d", pool)
	}
	b, err := newBase(sched, forward, src)
	if err != nil {
		return nil, err
	}
	return &ThresholdMix{base: b, batch: batch, pool: pool}, nil
}

// Admit implements buffer.Policy. The sampled delay is ignored: release is
// batch-driven.
func (m *ThresholdMix) Admit(p *packet.Packet, _ float64) {
	m.admit(p)
	if len(m.entries) >= m.batch+m.pool {
		m.flushRandom(m.batch)
	}
}

// Name implements buffer.Policy.
func (m *ThresholdMix) Name() string { return "threshold-mix" }

// TimedMix flushes its whole buffer every interval, in random order. The
// first flush is scheduled on construction.
type TimedMix struct {
	base
	interval float64
	stopped  bool
	armed    bool
}

var _ buffer.Policy = (*TimedMix)(nil)

// NewTimedMix returns a timed mix with the given flush interval (> 0). The
// periodic flush chain runs for the lifetime of the simulation; call Stop
// to end it (otherwise Scheduler.Run would never drain).
func NewTimedMix(sched *sim.Scheduler, forward buffer.Forward, interval float64, src *rng.Source) (*TimedMix, error) {
	if interval <= 0 || math.IsNaN(interval) || math.IsInf(interval, 0) {
		return nil, fmt.Errorf("mix: flush interval must be positive and finite, got %v", interval)
	}
	b, err := newBase(sched, forward, src)
	if err != nil {
		return nil, err
	}
	m := &TimedMix{base: b, interval: interval}
	m.armFlush()
	return m, nil
}

func (m *TimedMix) armFlush() {
	m.sched.After(m.interval, func() {
		if m.stopped {
			return
		}
		// A flush drains the whole buffer, so the chain always goes idle
		// here and re-arms lazily on the next Admit. This bounds every
		// message's wait by one interval and lets the event list drain at
		// end of simulation instead of ticking forever.
		m.flushRandom(len(m.entries))
		m.armed = false
	})
	m.armed = true
}

// Admit implements buffer.Policy; the sampled delay is ignored.
func (m *TimedMix) Admit(p *packet.Packet, _ float64) {
	m.admit(p)
	if !m.armed && !m.stopped {
		m.armFlush()
	}
}

// Stop ends the periodic flush chain after at most one more flush.
func (m *TimedMix) Stop() { m.stopped = true }

// Name implements buffer.Policy.
func (m *TimedMix) Name() string { return "timed-mix" }

// LatencyVariance is the scheme-independent privacy score used by the mix
// comparison: the variance of delivery latency, which equals the MSE of the
// strongest constant-offset estimator (one that knows each flow's mean
// delay exactly). See adversary.BestConstantOffsetMSE.
func LatencyVariance(latencies []float64) float64 {
	var w metrics.Welford
	for _, l := range latencies {
		w.Add(l)
	}
	return w.Variance()
}
