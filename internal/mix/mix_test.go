package mix

import (
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/buffer"
	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/sim"
)

type delivered struct {
	at  float64
	seq uint32
}

func collector(sched *sim.Scheduler) (buffer.Forward, *[]delivered) {
	var out []delivered
	return func(p *packet.Packet, _ bool) {
		out = append(out, delivered{at: sched.Now(), seq: p.Truth.Seq})
	}, &out
}

func TestThresholdMixFlushesAtThreshold(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	m, err := NewThresholdMix(sched, fwd, 3, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		i := i
		sched.At(float64(i), func() { m.Admit(packet.New(1, uint32(i), float64(i)), 0) })
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 0 {
		t.Fatalf("mix flushed %d messages below threshold", len(*out))
	}
	sched.At(sched.Now()+1, func() { m.Admit(packet.New(1, 2, 0), 0) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 3 {
		t.Fatalf("flushed %d messages at threshold, want 3", len(*out))
	}
	if m.Len() != 0 {
		t.Fatalf("mix retained %d messages with pool 0", m.Len())
	}
}

func TestThresholdMixRetainsPool(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	m, err := NewThresholdMix(sched, fwd, 4, 2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sched.At(0, func() {
		for i := 0; i < 6; i++ {
			m.Admit(packet.New(1, uint32(i), 0), 0)
		}
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 4 {
		t.Fatalf("flushed %d, want batch of 4", len(*out))
	}
	if m.Len() != 2 {
		t.Fatalf("pool holds %d, want 2", m.Len())
	}
}

func TestThresholdMixRandomizesOrder(t *testing.T) {
	// Over many flushes, the first released message must not always be the
	// first admitted (that would leak arrival order — the whole point of a
	// mix is to break it).
	firstIsOldest := 0
	const rounds = 200
	for r := 0; r < rounds; r++ {
		sched := sim.NewScheduler()
		fwd, out := collector(sched)
		m, err := NewThresholdMix(sched, fwd, 5, 0, rng.New(uint64(r)))
		if err != nil {
			t.Fatal(err)
		}
		sched.At(0, func() {
			for i := 0; i < 5; i++ {
				m.Admit(packet.New(1, uint32(i), 0), 0)
			}
		})
		if err := sched.Run(); err != nil {
			t.Fatal(err)
		}
		if (*out)[0].seq == 0 {
			firstIsOldest++
		}
	}
	// Expected ≈ rounds/5 = 40; demand it is far from "always".
	if firstIsOldest > rounds/2 {
		t.Fatalf("first-out was first-in %d/%d times: order not mixed", firstIsOldest, rounds)
	}
}

func TestTimedMixFlushesPeriodically(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	m, err := NewTimedMix(sched, fwd, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		i := i
		sched.At(float64(i), func() { m.Admit(packet.New(1, uint32(i), float64(i)), 0) })
	}
	sched.At(25, func() { m.Admit(packet.New(1, 5, 25), 0) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 6 {
		t.Fatalf("delivered %d, want 6", len(*out))
	}
	// First five flush at the t=10 tick. The chain then went idle (empty
	// buffer) and re-armed lazily on the t=25 admit, so the sixth flushes
	// one interval later at t=35 — every message waits at most interval.
	for _, d := range (*out)[:5] {
		if d.at != 10 {
			t.Fatalf("early message flushed at %v, want 10", d.at)
		}
	}
	if (*out)[5].at != 35 {
		t.Fatalf("late message flushed at %v, want 35", (*out)[5].at)
	}
}

func TestTimedMixDrainsWhenIdle(t *testing.T) {
	// The flush chain must not keep the event list alive forever after
	// traffic stops.
	sched := sim.NewScheduler()
	fwd, _ := collector(sched)
	m, err := NewTimedMix(sched, fwd, 5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	sched.At(1, func() { m.Admit(packet.New(1, 0, 1), 0) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// Run returned, so the chain stopped. The single message flushed at the
	// first tick.
	if m.Len() != 0 {
		t.Fatalf("mix retained %d messages", m.Len())
	}
	if sched.Now() > 11 {
		t.Fatalf("flush chain ran until %v after traffic stopped", sched.Now())
	}
}

func TestTimedMixStop(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	m, err := NewTimedMix(sched, fwd, 5, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sched.At(1, func() { m.Admit(packet.New(1, 0, 1), 0) })
	sched.At(2, func() { m.Stop() })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 0 {
		t.Fatal("stopped mix still flushed")
	}
}

func TestConstructorValidation(t *testing.T) {
	sched := sim.NewScheduler()
	fwd := func(*packet.Packet, bool) {}
	src := rng.New(1)
	if _, err := NewThresholdMix(sched, fwd, 0, 0, src); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := NewThresholdMix(sched, fwd, 1, -1, src); err == nil {
		t.Fatal("negative pool accepted")
	}
	if _, err := NewThresholdMix(nil, fwd, 1, 0, src); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewThresholdMix(sched, nil, 1, 0, src); err == nil {
		t.Fatal("nil forward accepted")
	}
	if _, err := NewThresholdMix(sched, fwd, 1, 0, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewTimedMix(sched, fwd, 0, src); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewTimedMix(sched, fwd, math.Inf(1), src); err == nil {
		t.Fatal("infinite interval accepted")
	}
}

func TestNamesAndStats(t *testing.T) {
	sched := sim.NewScheduler()
	fwd := func(*packet.Packet, bool) {}
	tm, err := NewThresholdMix(sched, fwd, 2, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tm.Name() != "threshold-mix" {
		t.Fatalf("name = %q", tm.Name())
	}
	ti, err := NewTimedMix(sched, fwd, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if ti.Name() != "timed-mix" {
		t.Fatalf("name = %q", ti.Name())
	}
	sched.At(0, func() {
		tm.Admit(packet.New(1, 0, 0), 0)
		tm.Admit(packet.New(1, 1, 0), 0)
		tm.Admit(packet.New(1, 2, 0), 0)
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	s := tm.Stats()
	if s.Arrivals != 3 || s.Departures != 2 || s.Drops != 0 || s.Preemptions != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLatencyVariance(t *testing.T) {
	if v := LatencyVariance([]float64{5, 5, 5}); v != 0 {
		t.Fatalf("constant latencies variance = %v", v)
	}
	if v := LatencyVariance([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(v-4) > 1e-12 {
		t.Fatalf("variance = %v, want 4", v)
	}
}

// Property: a threshold mix conserves messages — arrivals equal departures
// plus the retained pool — for arbitrary admission counts.
func TestThresholdConservationProperty(t *testing.T) {
	f := func(count uint8, batchRaw, poolRaw uint8) bool {
		batch := int(batchRaw%5) + 1
		pool := int(poolRaw % 4)
		sched := sim.NewScheduler()
		fwd := func(*packet.Packet, bool) {}
		m, err := NewThresholdMix(sched, fwd, batch, pool, rng.New(uint64(count)))
		if err != nil {
			return false
		}
		n := int(count % 64)
		sched.At(0, func() {
			for i := 0; i < n; i++ {
				m.Admit(packet.New(1, uint32(i), 0), 0)
			}
		})
		if err := sched.Run(); err != nil {
			return false
		}
		s := m.Stats()
		return s.Arrivals == s.Departures+uint64(m.Len()) && m.Len() <= batch+pool
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMixEvacuate(t *testing.T) {
	sched := sim.NewScheduler()
	fwd, out := collector(sched)
	m, err := NewThresholdMix(sched, fwd, 10, 0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	sched.At(0, func() {
		for i := 0; i < 4; i++ {
			m.Admit(packet.New(1, uint32(i), 0), 0)
		}
	})
	var got []*packet.Packet
	sched.At(1, func() { got = m.Evacuate() })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || m.Len() != 0 || len(*out) != 0 {
		t.Fatalf("evacuate: got %d, len %d, delivered %d", len(got), m.Len(), len(*out))
	}
}
