// Package queueing implements the analytic queueing machinery of §4.
//
// Buffering a packet for an exponential delay makes each node an M/M/∞
// queue: every arriving packet gets its own "variable-delay server", so the
// number of buffered packets N(t) is Poisson with mean ρ = λ/µ. Finite
// buffers turn the model into M/M/k/k, whose blocking probability is the
// Erlang loss formula E(ρ, k) (eq. 5). The formula is monotone in ρ, which
// lets a node *plan* its delay parameter µ: given an incoming rate λ, buffer
// size k, and target drop/preemption rate α, solve E(λ/µ, k) = α for µ.
// That planner is the "rate-controlled" half of RCAD.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// PoissonPMF returns P{N = k} for a Poisson distribution with the given
// mean, computed in log space for stability at large means. It returns an
// error for negative mean or k.
func PoissonPMF(mean float64, k int) (float64, error) {
	if mean < 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return 0, fmt.Errorf("queueing: poisson mean must be non-negative and finite, got %v", mean)
	}
	if k < 0 {
		return 0, fmt.Errorf("queueing: poisson k must be non-negative, got %d", k)
	}
	if mean == 0 {
		if k == 0 {
			return 1, nil
		}
		return 0, nil
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(mean) - mean - lg), nil
}

// MMInfOccupancyPMF returns the steady-state probability that an M/M/∞
// buffering node with arrival rate lambda and mean delay 1/mu holds exactly
// k packets: Poisson(ρ = λ/µ) evaluated at k (§4).
func MMInfOccupancyPMF(lambda, mu float64, k int) (float64, error) {
	rho, err := utilization(lambda, mu)
	if err != nil {
		return 0, err
	}
	return PoissonPMF(rho, k)
}

// MMInfExpectedOccupancy returns the expected number of buffered packets at
// an M/M/∞ node: N̄ = ρ = λ/µ (§4).
func MMInfExpectedOccupancy(lambda, mu float64) (float64, error) {
	return utilization(lambda, mu)
}

func utilization(lambda, mu float64) (float64, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return 0, fmt.Errorf("queueing: arrival rate must be non-negative and finite, got %v", lambda)
	}
	if mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return 0, fmt.Errorf("queueing: service rate must be positive and finite, got %v", mu)
	}
	return lambda / mu, nil
}

// ErlangLoss returns the Erlang loss (Erlang-B) blocking probability
// E(ρ, k): the probability that an arriving packet finds all k buffer slots
// of an M/M/k/k node occupied (eq. 5). It is computed with the standard
// stable recurrence
//
//	E(ρ, 0) = 1
//	E(ρ, j) = ρ·E(ρ, j−1) / (j + ρ·E(ρ, j−1))
//
// which avoids the factorial overflow of the textbook form. It returns an
// error for negative ρ or k.
func ErlangLoss(rho float64, k int) (float64, error) {
	if rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("queueing: utilization must be non-negative and finite, got %v", rho)
	}
	if k < 0 {
		return 0, fmt.Errorf("queueing: buffer size must be non-negative, got %d", k)
	}
	e := 1.0
	for j := 1; j <= k; j++ {
		e = rho * e / (float64(j) + rho*e)
	}
	return e, nil
}

// MMkkOccupancyPMF returns the steady-state probability that an M/M/k/k node
// with utilization ρ holds exactly n packets: the Poisson pmf truncated to
// {0..k} and renormalised.
func MMkkOccupancyPMF(rho float64, k, n int) (float64, error) {
	if n < 0 || n > k {
		return 0, fmt.Errorf("queueing: occupancy %d outside [0,%d]", n, k)
	}
	num, err := PoissonPMF(rho, n)
	if err != nil {
		return 0, err
	}
	den := 0.0
	for j := 0; j <= k; j++ {
		p, err := PoissonPMF(rho, j)
		if err != nil {
			return 0, err
		}
		den += p
	}
	if den == 0 {
		return 0, errors.New("queueing: degenerate truncated distribution")
	}
	return num / den, nil
}

// MMkkExpectedOccupancy returns the expected number of packets in an
// M/M/k/k node: ρ·(1 − E(ρ, k)) (carried load).
func MMkkExpectedOccupancy(rho float64, k int) (float64, error) {
	e, err := ErlangLoss(rho, k)
	if err != nil {
		return 0, err
	}
	return rho * (1 - e), nil
}

// MMInfTransientMean returns the expected occupancy of an M/M/∞ buffering
// node at time t after starting empty: m(t) = ρ·(1 − e^{−µt}). It converges
// to the stationary ρ with time constant 1/µ, which is why simulations
// discard a warmup of a few mean delays before measuring occupancy.
func MMInfTransientMean(lambda, mu, t float64) (float64, error) {
	rho, err := utilization(lambda, mu)
	if err != nil {
		return 0, err
	}
	if t < 0 || math.IsNaN(t) {
		return 0, fmt.Errorf("queueing: time must be non-negative, got %v", t)
	}
	return rho * (1 - math.Exp(-mu*t)), nil
}

// ErrTargetUnreachable is returned by the planners when no finite parameter
// achieves the requested loss target.
var ErrTargetUnreachable = errors.New("queueing: loss target unreachable")

// SolveRho returns the utilization ρ at which E(ρ, k) equals the target loss
// probability α ∈ (0, 1). E(·, k) is strictly increasing in ρ, so the root is
// unique; it is found by bisection to within tol (relative). It returns an
// error for α outside (0, 1) or k < 1.
func SolveRho(k int, alpha float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("queueing: SolveRho needs k >= 1, got %d", k)
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return 0, fmt.Errorf("queueing: target loss must lie in (0,1), got %v", alpha)
	}
	lo, hi := 0.0, 1.0
	// Grow the bracket until E(hi, k) exceeds alpha. E(ρ,k) → 1 as ρ → ∞,
	// so this terminates.
	for {
		e, err := ErlangLoss(hi, k)
		if err != nil {
			return 0, err
		}
		if e >= alpha {
			break
		}
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("%w: E(ρ,%d) < %v for all ρ <= 1e12", ErrTargetUnreachable, k, alpha)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		e, err := ErlangLoss(mid, k)
		if err != nil {
			return 0, err
		}
		if e < alpha {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*math.Max(1, hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// PlanMu returns the delay rate µ (per-packet service rate, i.e. the inverse
// of the mean buffering delay) that an M/M/k/k node with incoming rate
// lambda must use so that its Erlang loss equals the target α. This is the
// §4 adaptive design rule: as λ grows near the sink, µ must grow (delays
// must shorten) to hold the drop rate at α.
func PlanMu(lambda float64, k int, alpha float64) (float64, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return 0, fmt.Errorf("queueing: arrival rate must be positive and finite, got %v", lambda)
	}
	rho, err := SolveRho(k, alpha)
	if err != nil {
		return 0, err
	}
	return lambda / rho, nil
}

// SuperposedRate returns the aggregate arrival rate of m independent Poisson
// flows (§4's superposition property). Negative rates are rejected.
func SuperposedRate(rates ...float64) (float64, error) {
	total := 0.0
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return 0, fmt.Errorf("queueing: flow %d rate must be non-negative and finite, got %v", i, r)
		}
		total += r
	}
	return total, nil
}

// BurkeDepartureRate returns the steady-state departure rate of a stable
// M/M/m queue with arrival rate lambda — which, by Burke's theorem, is a
// Poisson process at the same rate λ. For M/M/∞ (every packet gets its own
// delay server) stability always holds. The function exists so the tandem
// analysis in package core reads as the theorem it applies.
func BurkeDepartureRate(lambda float64) (float64, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return 0, fmt.Errorf("queueing: arrival rate must be non-negative and finite, got %v", lambda)
	}
	return lambda, nil
}
