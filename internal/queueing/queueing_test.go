package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonPMFKnownValues(t *testing.T) {
	tests := []struct {
		mean float64
		k    int
		want float64
	}{
		{0, 0, 1},
		{0, 3, 0},
		{1, 0, math.Exp(-1)},
		{1, 1, math.Exp(-1)},
		{2, 2, 2 * math.Exp(-2)},
		{10, 10, math.Pow(10, 10) / 3628800 * math.Exp(-10)},
	}
	for _, tc := range tests {
		got, err := PoissonPMF(tc.mean, tc.k)
		if err != nil {
			t.Fatalf("PoissonPMF(%v,%d): %v", tc.mean, tc.k, err)
		}
		if math.Abs(got-tc.want) > 1e-12*math.Max(1, tc.want) {
			t.Fatalf("PoissonPMF(%v,%d) = %v, want %v", tc.mean, tc.k, got, tc.want)
		}
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 30, 300} {
		sum := 0.0
		for k := 0; k < int(mean)*4+50; k++ {
			p, err := PoissonPMF(mean, k)
			if err != nil {
				t.Fatal(err)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Poisson(%v) pmf sums to %v", mean, sum)
		}
	}
}

func TestPoissonPMFLargeMeanStable(t *testing.T) {
	// The naive ρ^k/k! overflows beyond k ≈ 170; the log-space form must not.
	p, err := PoissonPMF(500, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Mode of Poisson(500) ≈ 1/sqrt(2π·500).
	want := 1 / math.Sqrt(2*math.Pi*500)
	if math.Abs(p-want) > 0.01*want {
		t.Fatalf("PoissonPMF(500,500) = %v, want ≈ %v", p, want)
	}
}

func TestPoissonPMFValidation(t *testing.T) {
	if _, err := PoissonPMF(-1, 0); err == nil {
		t.Fatal("negative mean accepted")
	}
	if _, err := PoissonPMF(1, -1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestMMInfOccupancy(t *testing.T) {
	// λ=0.5, µ=1/30 → ρ=15: the paper's S1-like load.
	rho, err := MMInfExpectedOccupancy(0.5, 1.0/30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-15) > 1e-9 {
		t.Fatalf("expected occupancy = %v, want 15", rho)
	}
	p, err := MMInfOccupancyPMF(0.5, 1.0/30, 15)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PoissonPMF(15, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-want) > 1e-15 {
		t.Fatalf("MMInf pmf = %v, want Poisson(15) at 15 = %v", p, want)
	}
}

func TestMMInfValidation(t *testing.T) {
	if _, err := MMInfExpectedOccupancy(-1, 1); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if _, err := MMInfExpectedOccupancy(1, 0); err == nil {
		t.Fatal("zero mu accepted")
	}
}

func TestErlangLossKnownValues(t *testing.T) {
	// E(ρ, 0) = 1 for any ρ: zero slots block everything.
	e, err := ErlangLoss(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != 1 {
		t.Fatalf("E(5,0) = %v, want 1", e)
	}
	// E(ρ, 1) = ρ/(1+ρ).
	e, err = ErlangLoss(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-2.0/3.0) > 1e-12 {
		t.Fatalf("E(2,1) = %v, want 2/3", e)
	}
	// E(ρ, 2) = (ρ²/2)/(1+ρ+ρ²/2); at ρ=2: 2/(1+2+2) = 0.4.
	e, err = ErlangLoss(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.4) > 1e-12 {
		t.Fatalf("E(2,2) = %v, want 0.4", e)
	}
	// Zero load never blocks (k >= 1).
	e, err = ErlangLoss(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("E(0,3) = %v, want 0", e)
	}
}

func TestErlangLossMatchesDirectFormula(t *testing.T) {
	// Compare the recurrence against the textbook formula where factorials
	// are still exact.
	factorial := func(n int) float64 {
		f := 1.0
		for i := 2; i <= n; i++ {
			f *= float64(i)
		}
		return f
	}
	for _, rho := range []float64{0.5, 1, 5, 15} {
		for _, k := range []int{1, 5, 10, 20} {
			num := math.Pow(rho, float64(k)) / factorial(k)
			den := 0.0
			for i := 0; i <= k; i++ {
				den += math.Pow(rho, float64(i)) / factorial(i)
			}
			want := num / den
			got, err := ErlangLoss(rho, k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-10 {
				t.Fatalf("E(%v,%d) = %v, want %v", rho, k, got, want)
			}
		}
	}
}

func TestErlangLossMonotoneInRhoAndK(t *testing.T) {
	prev := 0.0
	for _, rho := range []float64{0.1, 1, 5, 10, 50} {
		e, err := ErlangLoss(rho, 10)
		if err != nil {
			t.Fatal(err)
		}
		if e < prev {
			t.Fatalf("E(ρ,10) not increasing in ρ at %v", rho)
		}
		prev = e
	}
	prevK := 1.0
	for k := 0; k <= 30; k++ {
		e, err := ErlangLoss(15, k)
		if err != nil {
			t.Fatal(err)
		}
		if e > prevK {
			t.Fatalf("E(15,k) not decreasing in k at %d", k)
		}
		prevK = e
	}
}

func TestErlangLossLargeArgumentsStable(t *testing.T) {
	e, err := ErlangLoss(1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(e) || e <= 0 || e >= 1 {
		t.Fatalf("E(1000,1000) = %v, want in (0,1)", e)
	}
}

func TestMMkkOccupancyPMF(t *testing.T) {
	// k=1, ρ=1: P{0} = P{1} = 1/2.
	p0, err := MMkkOccupancyPMF(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := MMkkOccupancyPMF(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p0-0.5) > 1e-12 || math.Abs(p1-0.5) > 1e-12 {
		t.Fatalf("M/M/1/1 at ρ=1: p0=%v p1=%v, want 0.5 each", p0, p1)
	}
	// The distribution sums to 1 for arbitrary parameters.
	sum := 0.0
	for n := 0; n <= 10; n++ {
		p, err := MMkkOccupancyPMF(7.3, 10, n)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("M/M/10/10 pmf sums to %v", sum)
	}
	if _, err := MMkkOccupancyPMF(1, 5, 6); err == nil {
		t.Fatal("occupancy beyond k accepted")
	}
}

func TestMMkkExpectedOccupancyIsCarriedLoad(t *testing.T) {
	rho := 15.0
	k := 10
	e, err := ErlangLoss(rho, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MMkkExpectedOccupancy(rho, k)
	if err != nil {
		t.Fatal(err)
	}
	want := rho * (1 - e)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("carried load = %v, want %v", got, want)
	}
	if got >= float64(k)+1e-9 {
		t.Fatalf("expected occupancy %v exceeds buffer size %d", got, k)
	}
}

func TestSolveRhoRoundTrips(t *testing.T) {
	for _, k := range []int{1, 5, 10, 50} {
		for _, alpha := range []float64{0.001, 0.01, 0.1, 0.5} {
			rho, err := SolveRho(k, alpha)
			if err != nil {
				t.Fatalf("SolveRho(%d,%v): %v", k, alpha, err)
			}
			e, err := ErlangLoss(rho, k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(e-alpha) > 1e-6 {
				t.Fatalf("E(SolveRho(%d,%v)=%v, %d) = %v, want %v", k, alpha, rho, k, e, alpha)
			}
		}
	}
}

func TestSolveRhoValidation(t *testing.T) {
	if _, err := SolveRho(0, 0.1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SolveRho(5, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := SolveRho(5, 1); err == nil {
		t.Fatal("alpha=1 accepted")
	}
}

func TestPlanMuAchievesTarget(t *testing.T) {
	const k = 10
	const alpha = 0.1
	for _, lambda := range []float64{0.05, 0.5, 2} {
		mu, err := PlanMu(lambda, k, alpha)
		if err != nil {
			t.Fatal(err)
		}
		e, err := ErlangLoss(lambda/mu, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e-alpha) > 1e-6 {
			t.Fatalf("PlanMu(%v): achieved loss %v, want %v", lambda, e, alpha)
		}
	}
}

// TestPlanMuScalesWithLoad verifies the paper's §4 observation: "as we
// approach the sink and the traffic rate λ increases, we must decrease the
// average delay time 1/µ in order to maintain E(ρ,k) at a target drop rate".
func TestPlanMuScalesWithLoad(t *testing.T) {
	const k, alpha = 10, 0.1
	muLow, err := PlanMu(0.1, k, alpha)
	if err != nil {
		t.Fatal(err)
	}
	muHigh, err := PlanMu(1.0, k, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if muHigh <= muLow {
		t.Fatalf("µ did not grow with load: µ(0.1)=%v µ(1.0)=%v", muLow, muHigh)
	}
	// With a fixed target ρ*, µ is proportional to λ, so 1/µ (the privacy
	// delay budget) shrinks linearly near the sink.
	if math.Abs(muHigh/muLow-10) > 1e-6 {
		t.Fatalf("µ ratio = %v, want 10 (linear in λ)", muHigh/muLow)
	}
}

func TestSuperposedRate(t *testing.T) {
	got, err := SuperposedRate(0.1, 0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("superposed rate = %v, want 0.6", got)
	}
	if _, err := SuperposedRate(0.1, -0.2); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestBurkeDepartureRate(t *testing.T) {
	got, err := BurkeDepartureRate(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.7 {
		t.Fatalf("Burke departure rate = %v, want 0.7", got)
	}
	if _, err := BurkeDepartureRate(-1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestTargetUnreachableError(t *testing.T) {
	// Extremely small alpha with huge k is still reachable; unreachable is
	// exercised through PlanMu with invalid inputs instead. Verify the
	// sentinel is wired.
	_, err := SolveRho(1, 1e-300)
	if err != nil && !errors.Is(err, ErrTargetUnreachable) {
		// Either succeed or fail with the typed sentinel.
		t.Fatalf("unexpected error type: %v", err)
	}
}

// Property: Erlang loss always lies in [0,1] and the recurrence is monotone
// in ρ for arbitrary inputs.
func TestErlangLossRangeProperty(t *testing.T) {
	f := func(rhoRaw uint16, kRaw uint8) bool {
		rho := float64(rhoRaw) / 100
		k := int(kRaw % 64)
		e, err := ErlangLoss(rho, k)
		if err != nil {
			return false
		}
		if e < 0 || e > 1 || math.IsNaN(e) {
			return false
		}
		e2, err := ErlangLoss(rho+1, k)
		if err != nil {
			return false
		}
		return e2+1e-12 >= e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: PlanMu round-trips through ErlangLoss for arbitrary loads.
func TestPlanMuRoundTripProperty(t *testing.T) {
	f := func(lambdaRaw uint16, kRaw uint8) bool {
		lambda := 0.01 + float64(lambdaRaw)/65535*10
		k := int(kRaw%20) + 1
		mu, err := PlanMu(lambda, k, 0.1)
		if err != nil {
			return false
		}
		e, err := ErlangLoss(lambda/mu, k)
		if err != nil {
			return false
		}
		return math.Abs(e-0.1) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMMInfTransientMean(t *testing.T) {
	// At t=0 the buffer is empty; as t → ∞ it approaches ρ.
	v, err := MMInfTransientMean(0.5, 1.0/30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("m(0) = %v, want 0", v)
	}
	v, err = MMInfTransientMean(0.5, 1.0/30, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-15) > 1e-6 {
		t.Fatalf("m(∞) = %v, want ρ = 15", v)
	}
	// One time constant (t = 1/µ = 30) reaches 1−1/e of ρ.
	v, err = MMInfTransientMean(0.5, 1.0/30, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := 15 * (1 - math.Exp(-1))
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("m(1/µ) = %v, want %v", v, want)
	}
	if _, err := MMInfTransientMean(0.5, 1.0/30, -1); err == nil {
		t.Fatal("negative time accepted")
	}
	if _, err := MMInfTransientMean(-1, 1, 0); err == nil {
		t.Fatal("negative rate accepted")
	}
}
