package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds temprivd's structured logger: slog over a text or JSON
// handler, wrapped so every record logged with a traced context
// automatically carries trace_id (and job_id once the trace is bound to a
// job). format is "text" or "json"; level is one of "debug", "info",
// "warn", "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var base slog.Handler
	switch strings.ToLower(format) {
	case "json":
		base = slog.NewJSONHandler(w, opts)
	case "text", "":
		base = slog.NewTextHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	return slog.New(ContextHandler(base)), nil
}

// ContextHandler wraps a slog.Handler so records inherit trace_id/job_id
// from the span carried by their context — the glue that correlates log
// lines with traces without threading IDs through every call site.
func ContextHandler(base slog.Handler) slog.Handler {
	return ctxHandler{base: base}
}

type ctxHandler struct {
	base slog.Handler
}

func (h ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.base.Enabled(ctx, level)
}

func (h ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if sp := SpanFromContext(ctx); sp.Enabled() {
		r = r.Clone()
		r.AddAttrs(slog.String("trace_id", sp.TraceID()))
		if job := sp.JobID(); job != "" {
			r.AddAttrs(slog.String("job_id", job))
		}
	}
	return h.base.Handle(ctx, r)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{base: h.base.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{base: h.base.WithGroup(name)}
}
