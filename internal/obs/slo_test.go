package obs

import (
	"math"
	"strings"
	"testing"
	"time"

	"tempriv/internal/telemetry"
)

// near absorbs the float error a burn-rate division accumulates.
func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func newTestSLO(t *testing.T, reg *telemetry.Registry, clock *fakeClock) *SLO {
	t.Helper()
	s, err := NewSLO(reg, SLOOptions{
		Name:       "cached_result",
		Objective:  0.99,
		Threshold:  50 * time.Millisecond,
		FastWindow: 5 * time.Minute,
		SlowWindow: time.Hour,
		Now:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSLOClassifiesAgainstThreshold(t *testing.T) {
	reg := telemetry.NewRegistry()
	clock := newFakeClock()
	s := newTestSLO(t, reg, clock)
	s.Observe(10 * time.Millisecond)
	s.Observe(50 * time.Millisecond) // exactly at threshold counts as good
	s.Observe(51 * time.Millisecond)
	if got := reg.Counter("tempriv_slo_cached_result_good_total").Value(); got != 2 {
		t.Fatalf("good = %d, want 2", got)
	}
	if got := reg.Counter("tempriv_slo_cached_result_bad_total").Value(); got != 1 {
		t.Fatalf("bad = %d, want 1", got)
	}
}

func TestSLOBurnRates(t *testing.T) {
	reg := telemetry.NewRegistry()
	clock := newFakeClock()
	s := newTestSLO(t, reg, clock)

	// 100 observations, 5 bad: bad fraction 0.05, error budget 0.01 →
	// burn 5.0 on both windows while everything is recent.
	for i := 0; i < 95; i++ {
		s.Observe(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		s.Observe(time.Second)
	}
	fast, slow := s.BurnRates()
	if !near(fast, 5.0) || !near(slow, 5.0) {
		t.Fatalf("burn = (%v, %v), want (5, 5)", fast, slow)
	}

	// 10 minutes later the bad burst has aged out of the 5m fast window
	// but still counts in the 1h slow window.
	clock.Advance(10 * time.Minute)
	for i := 0; i < 100; i++ {
		s.Observe(time.Millisecond)
	}
	fast, slow = s.BurnRates()
	if fast != 0 {
		t.Fatalf("fast burn = %v after the burst aged out, want 0", fast)
	}
	if !near(slow, 2.5) { // 5 bad / 200 total = 0.025 over budget 0.01
		t.Fatalf("slow burn = %v, want 2.5", slow)
	}

	// Two hours later everything has aged out of both windows; an idle
	// service burns nothing.
	clock.Advance(2 * time.Hour)
	fast, slow = s.BurnRates()
	if fast != 0 || slow != 0 {
		t.Fatalf("burn = (%v, %v) after all windows expired, want (0, 0)", fast, slow)
	}
}

func TestSLOSyncExportsGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	clock := newFakeClock()
	s := newTestSLO(t, reg, clock)
	for i := 0; i < 99; i++ {
		s.Observe(time.Millisecond)
	}
	s.Observe(time.Second)
	SLOSet{s}.Sync()
	if got := reg.Gauge("tempriv_slo_cached_result_burn_rate_fast").Value(); !near(got, 1.0) {
		t.Fatalf("fast burn gauge = %v, want 1.0", got)
	}
	if got := reg.Gauge("tempriv_slo_cached_result_burn_rate_slow").Value(); !near(got, 1.0) {
		t.Fatalf("slow burn gauge = %v, want 1.0", got)
	}
	if got := reg.Gauge("tempriv_slo_cached_result_objective").Value(); got != 0.99 {
		t.Fatalf("objective gauge = %v", got)
	}
	if got := reg.Gauge("tempriv_slo_cached_result_threshold_seconds").Value(); got != 0.05 {
		t.Fatalf("threshold gauge = %v", got)
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tempriv_slo_cached_result_good_total 99",
		"tempriv_slo_cached_result_bad_total 1",
		"tempriv_slo_cached_result_burn_rate_fast 0.99",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestSLOOptionValidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	bad := []SLOOptions{
		{Objective: 0.99, Threshold: time.Second},                             // no name
		{Name: "Bad-Name", Objective: 0.99, Threshold: time.Second},           // name chars
		{Name: "x", Objective: 0, Threshold: time.Second},                     // objective low
		{Name: "x", Objective: 1, Threshold: time.Second},                     // objective high
		{Name: "x", Objective: 0.9, Threshold: 0},                             // no threshold
		{Name: "x", Objective: 0.9, Threshold: time.Second, FastWindow: time.Hour, SlowWindow: time.Minute}, // inverted windows
	}
	for i, o := range bad {
		if _, err := NewSLO(reg, o); err == nil {
			t.Errorf("case %d: NewSLO(%+v) accepted invalid options", i, o)
		}
	}
}

func TestSLONilHandle(t *testing.T) {
	var s *SLO
	s.Observe(time.Second)
	s.Sync()
	if f, sl := s.BurnRates(); f != 0 || sl != 0 {
		t.Fatal("nil SLO reported burn")
	}
	if s.Name() != "" {
		t.Fatal("nil SLO reported a name")
	}
	SLOSet{nil, nil}.Sync() // must not panic
}

func TestSLONilRegistryStillWorks(t *testing.T) {
	clock := newFakeClock()
	s, err := NewSLO(nil, SLOOptions{
		Name: "x", Objective: 0.5, Threshold: time.Millisecond, Now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(time.Second)
	s.Observe(time.Microsecond)
	if fast, _ := s.BurnRates(); fast != 1.0 { // 0.5 bad fraction / 0.5 budget
		t.Fatalf("burn = %v, want 1.0", fast)
	}
}
