package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewLogger(&buf, "yaml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(&buf, "json", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := NewLogger(&buf, "", ""); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("info line emitted at warn level")
	}
	if !strings.Contains(out, "visible") {
		t.Error("warn line missing")
	}
}

func TestContextHandlerAddsTraceAndJobIDs(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Options{})
	ctx, root := tr.StartTrace(context.Background(), "ctx-trace-1", "job")

	// Before the job binds: trace_id only.
	log.InfoContext(ctx, "accepted")
	// After: both IDs.
	root.BindJob("job-42")
	log.InfoContext(ctx, "running")
	// Untraced contexts carry neither.
	log.InfoContext(context.Background(), "plain")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d log lines, want 3", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != "ctx-trace-1" {
		t.Errorf("line 0 trace_id = %v", rec["trace_id"])
	}
	if _, has := rec["job_id"]; has {
		t.Error("line 0 has job_id before BindJob")
	}
	rec = map[string]any{}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != "ctx-trace-1" || rec["job_id"] != "job-42" {
		t.Errorf("line 1 ids = %v / %v", rec["trace_id"], rec["job_id"])
	}
	rec = map[string]any{}
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatal(err)
	}
	if _, has := rec["trace_id"]; has {
		t.Error("untraced line carries a trace_id")
	}
}

func TestContextHandlerPreservesWithAttrsAndGroups(t *testing.T) {
	var buf bytes.Buffer
	base := slog.NewJSONHandler(&buf, nil)
	log := slog.New(ContextHandler(base)).With("component", "queue").WithGroup("g")
	tr := New(Options{})
	ctx, root := tr.StartTrace(context.Background(), "with-attrs-1", "job")
	defer root.End()
	log.InfoContext(ctx, "msg", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["component"] != "queue" {
		t.Errorf("WithAttrs lost: %v", rec)
	}
	g, _ := rec["g"].(map[string]any)
	if g == nil || g["k"] != "v" {
		t.Errorf("WithGroup lost: %v", rec)
	}
	// The trace ID lands inside the open group — acceptable; what matters
	// is that it is present somewhere in the record.
	if !strings.Contains(buf.String(), "with-attrs-1") {
		t.Errorf("trace_id missing from grouped record: %s", buf.String())
	}
}
