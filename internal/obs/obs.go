// Package obs is temprivd's request-scoped observability layer: end-to-end
// job traces, burn-rate SLOs (see slo.go) and trace-aware structured
// logging (see log.go) — the three pillars the metrics registry
// (internal/telemetry) alone cannot provide, because aggregate counters
// cannot say *which stage* of *which job* produced a latency.
//
// # Tracing model
//
// A Tracer mints one trace per submitted job at HTTP ingress (or adopts a
// client-supplied X-Trace-Id) and records a tree of spans as the job moves
// through the serving stack: ingress parsing, queue wait, retry attempts
// and backoff sleeps (internal/jobs), cache consultation and fill
// (internal/resultcache via the server's Runner), engine execution with one
// span per replicate (internal/scenario), and chunk persistence
// (internal/resultstream). Finished traces land in a fixed-capacity
// flight-recorder ring, queryable by job ID (GET /v1/traces/{jobID}), and
// optionally stream to a JSONL file (temprivd -trace-dir).
//
// # Propagation
//
// Spans travel by context.Context: StartSpan derives a child of the span
// already in ctx, and SpanRef.Child covers seams where no context flows
// (the resultstream sink hooks). The per-packet simulation core is never
// instrumented — tracing stops at the replicate boundary, so the event
// kernel's zero-allocation fast path is untouched.
//
// # Disabled cost
//
// Like the telemetry registry, the disabled path is free: a nil *Tracer
// mints nothing, a context without a span yields the zero SpanRef, and
// every SpanRef method no-ops on the zero value without allocating —
// pinned by an AllocsPerRun test and a benchmark gated in CI
// (ci/benchgate.py). Instrumented code therefore calls StartSpan
// unconditionally.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the flight-recorder ring size when Options.Capacity
// is zero: the most recent 512 traces stay queryable.
const DefaultCapacity = 512

// maxSpansPerTrace bounds one trace's span count so a pathological job
// (say, a 10⁶-replicate sweep) cannot grow a trace without bound. Spans
// past the cap are dropped and counted on the root span.
const maxSpansPerTrace = 4096

// Options configure a Tracer.
type Options struct {
	// Capacity bounds how many traces the flight recorder retains
	// (default DefaultCapacity). The oldest trace is evicted first.
	Capacity int
	// Sink, when non-nil, receives one JSON line per *finished* trace —
	// the -trace-dir stream. Writes happen under the tracer lock, so the
	// writer should be buffered or fast; a write error disables the sink
	// for the rest of the process life (the ring keeps working).
	Sink io.Writer
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// Tracer is the flight recorder: it mints traces, retains the most recent
// Capacity of them, and indexes them by trace ID and by job ID. A nil
// *Tracer is the disabled state — StartTrace returns the zero SpanRef and
// costs nothing.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	now    func() time.Time
	order  []*Trace // start order; order[0] is evicted first
	byID   map[string]*Trace
	byJob  map[string]*Trace
	sink   io.Writer
	sinkErr error
	minted atomic.Uint64 // fallback ID counter if crypto/rand fails
}

// New returns a Tracer with the given options.
func New(o Options) *Tracer {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return &Tracer{
		cap:   o.Capacity,
		now:   o.Now,
		byID:  make(map[string]*Trace),
		byJob: make(map[string]*Trace),
		sink:  o.Sink,
	}
}

// Trace is one job's span record. All fields are guarded by mu — spans are
// started and ended from HTTP handlers, queue workers and engine replicate
// goroutines concurrently.
type Trace struct {
	mu      sync.Mutex
	tracer  *Tracer
	id      string
	jobID   string
	start   time.Time
	end     time.Time // zero while the trace is live
	spans   []span    // spans[0] is the root
	dropped int       // spans discarded past maxSpansPerTrace
}

// span is one timed operation inside a trace.
type span struct {
	name   string
	parent int32 // index into Trace.spans; -1 for the root
	start  time.Time
	end    time.Time // zero while open
	attrs  []Attr
}

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRef is a handle on one span of one trace. The zero SpanRef is the
// disabled handle: every method no-ops without allocating, so instrumented
// code never branches on whether tracing is on.
type SpanRef struct {
	t   *Trace
	idx int32
}

// Enabled reports whether the handle refers to a live span. Use it to
// guard argument construction that would itself allocate (formatting an
// attribute value, say); the methods themselves are always safe to call.
func (s SpanRef) Enabled() bool { return s.t != nil }

// TraceID returns the owning trace's ID ("" on the zero handle).
func (s SpanRef) TraceID() string {
	if s.t == nil {
		return ""
	}
	return s.t.id
}

// JobID returns the job bound to the owning trace ("" until BindJob).
func (s SpanRef) JobID() string {
	if s.t == nil {
		return ""
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.t.jobID
}

// Child starts a sub-span under s — the propagation path for seams where
// no context flows (hooks, callbacks). On the zero handle it returns the
// zero handle.
func (s SpanRef) Child(name string) SpanRef {
	if s.t == nil {
		return SpanRef{}
	}
	return s.t.startSpan(s.idx, name)
}

// Annotate attaches a key/value pair to the span.
func (s SpanRef) Annotate(key, value string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if int(s.idx) >= len(s.t.spans) {
		return
	}
	sp := &s.t.spans[s.idx]
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
}

// AnnotateInt attaches an integer annotation. The formatting happens only
// when the span is live, so hot paths pay nothing when tracing is off.
func (s SpanRef) AnnotateInt(key string, value int64) {
	if s.t == nil {
		return
	}
	s.Annotate(key, strconv.FormatInt(value, 10))
}

// End closes the span. Ending the root span finishes the trace: its end
// time is stamped and the trace streams to the JSONL sink (if configured).
// Ending a span twice is a no-op.
func (s SpanRef) End() {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if int(s.idx) >= len(t.spans) {
		t.mu.Unlock()
		return
	}
	sp := &t.spans[s.idx]
	if !sp.end.IsZero() {
		t.mu.Unlock()
		return
	}
	now := t.tracer.clock()
	sp.end = now
	root := s.idx == 0
	if root {
		t.end = now
	}
	t.mu.Unlock()
	if root {
		t.tracer.finished(t)
	}
}

// EndErr closes the span, annotating it with the error first (nil errors
// leave no annotation).
func (s SpanRef) EndErr(err error) {
	if s.t != nil && err != nil {
		s.Annotate("error", err.Error())
	}
	s.End()
}

// BindJob associates the trace with a queue job ID, making it queryable
// via Tracer.ByJob (the GET /v1/traces/{jobID} path) and stamping the job
// ID into trace-aware log lines.
func (s SpanRef) BindJob(jobID string) {
	if s.t == nil || jobID == "" {
		return
	}
	t := s.t
	t.mu.Lock()
	t.jobID = jobID
	t.mu.Unlock()
	tr := t.tracer
	tr.mu.Lock()
	tr.byJob[jobID] = t
	tr.mu.Unlock()
}

// startSpan appends a child span under parent and returns its handle.
func (t *Trace) startSpan(parent int32, name string) SpanRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		return SpanRef{}
	}
	t.spans = append(t.spans, span{
		name:   name,
		parent: parent,
		start:  t.tracer.clock(),
	})
	return SpanRef{t: t, idx: int32(len(t.spans) - 1)}
}

func (t *Tracer) clock() time.Time {
	if t == nil || t.now == nil {
		return time.Now()
	}
	return t.now()
}

// ctxKey carries the current SpanRef through a context.Context. The value
// is only installed when tracing is enabled, so the disabled path never
// allocates a context node.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the current span. On the zero
// handle it returns ctx unchanged (no allocation).
func ContextWithSpan(ctx context.Context, s SpanRef) context.Context {
	if s.t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the current span (zero handle if none).
func SpanFromContext(ctx context.Context) SpanRef {
	s, _ := ctx.Value(ctxKey{}).(SpanRef)
	return s
}

// StartSpan starts a child of ctx's current span and returns a derived
// context carrying it. With no span in ctx (tracing disabled, or a code
// path outside any trace) it returns ctx unchanged and the zero handle —
// zero allocations, so hot paths call it unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, SpanRef) {
	parent := SpanFromContext(ctx)
	if parent.t == nil {
		return ctx, SpanRef{}
	}
	child := parent.Child(name)
	if child.t == nil { // span cap reached
		return ctx, SpanRef{}
	}
	return context.WithValue(ctx, ctxKey{}, child), child
}

// TraceIDFromContext returns the trace ID of ctx's current span ("" when
// untraced) — the hook log handlers use.
func TraceIDFromContext(ctx context.Context) string {
	return SpanFromContext(ctx).TraceID()
}

// StartTrace mints a new trace (or adopts requestedID if it is a sane
// client-supplied identifier), registers it in the flight recorder, and
// returns a context carrying the root span plus the root's handle. On a
// nil tracer it returns ctx unchanged and the zero handle.
func (t *Tracer) StartTrace(ctx context.Context, requestedID, rootName string) (context.Context, SpanRef) {
	if t == nil {
		return ctx, SpanRef{}
	}
	id := requestedID
	if !ValidTraceID(id) {
		id = t.mintID()
	}
	tr := &Trace{tracer: t, id: id, start: t.clock()}
	tr.spans = append(tr.spans, span{name: rootName, parent: -1, start: tr.start})

	t.mu.Lock()
	// A duplicate client-supplied ID would silently merge two jobs'
	// traces; remint instead.
	if _, dup := t.byID[id]; dup {
		id = t.mintID()
		tr.id = id
	}
	t.byID[id] = tr
	t.order = append(t.order, tr)
	for len(t.order) > t.cap {
		old := t.order[0]
		t.order = t.order[1:]
		delete(t.byID, old.id)
		old.mu.Lock()
		if old.jobID != "" {
			if t.byJob[old.jobID] == old {
				delete(t.byJob, old.jobID)
			}
		}
		old.mu.Unlock()
	}
	t.mu.Unlock()

	root := SpanRef{t: tr, idx: 0}
	return context.WithValue(ctx, ctxKey{}, root), root
}

// ValidTraceID reports whether a client-supplied trace ID is acceptable:
// 8–64 characters drawn from [A-Za-z0-9._-]. Anything else is replaced
// with a minted ID rather than rejected — tracing must never fail a
// request.
func ValidTraceID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// mintID returns a fresh 16-hex-char trace ID.
func (t *Tracer) mintID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion must not fail tracing; fall back to a
		// process-unique counter.
		return fmt.Sprintf("trace-%016x", t.minted.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// SpanTree is the JSON form of one span and its children, as served by
// GET /v1/traces/{jobID}. StartOffsetNS is measured from the trace root's
// start on the monotonic clock, so offsets order correctly even across a
// wall-clock step; DurationNS is -1 while the span is still open.
type SpanTree struct {
	Name          string            `json:"name"`
	Start         time.Time         `json:"start"`
	StartOffsetNS int64             `json:"start_offset_ns"`
	DurationNS    int64             `json:"duration_ns"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Children      []*SpanTree       `json:"children,omitempty"`
}

// TraceTree is a finished-or-live trace rendered as a span tree.
type TraceTree struct {
	TraceID      string    `json:"trace_id"`
	JobID        string    `json:"job_id,omitempty"`
	Start        time.Time `json:"start"`
	Complete     bool      `json:"complete"`
	DurationNS   int64     `json:"duration_ns"` // -1 while live
	SpanCount    int       `json:"span_count"`
	SpansDropped int       `json:"spans_dropped,omitempty"`
	Root         *SpanTree `json:"root"`
}

// tree renders the trace's current state.
func (t *Trace) tree() *TraceTree {
	t.mu.Lock()
	defer t.mu.Unlock()
	nodes := make([]*SpanTree, len(t.spans))
	for i := range t.spans {
		sp := &t.spans[i]
		n := &SpanTree{
			Name:          sp.name,
			Start:         sp.start,
			StartOffsetNS: sp.start.Sub(t.start).Nanoseconds(),
			DurationNS:    -1,
		}
		if !sp.end.IsZero() {
			n.DurationNS = sp.end.Sub(sp.start).Nanoseconds()
		}
		if len(sp.attrs) > 0 {
			n.Attrs = make(map[string]string, len(sp.attrs))
			for _, a := range sp.attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[i] = n
	}
	for i := 1; i < len(t.spans); i++ {
		p := t.spans[i].parent
		if p >= 0 && int(p) < len(nodes) {
			nodes[p].Children = append(nodes[p].Children, nodes[i])
		}
	}
	out := &TraceTree{
		TraceID:      t.id,
		JobID:        t.jobID,
		Start:        t.start,
		Complete:     !t.end.IsZero(),
		DurationNS:   -1,
		SpanCount:    len(t.spans),
		SpansDropped: t.dropped,
		Root:         nodes[0],
	}
	if out.Complete {
		out.DurationNS = t.end.Sub(t.start).Nanoseconds()
	}
	return out
}

// ByJob returns the span tree of the trace bound to jobID. Live traces
// render with Complete=false and open spans at DurationNS -1.
func (t *Tracer) ByJob(jobID string) (*TraceTree, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	tr := t.byJob[jobID]
	t.mu.Unlock()
	if tr == nil {
		return nil, false
	}
	return tr.tree(), true
}

// ByID returns the span tree of the trace with the given trace ID.
func (t *Tracer) ByID(id string) (*TraceTree, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	tr := t.byID[id]
	t.mu.Unlock()
	if tr == nil {
		return nil, false
	}
	return tr.tree(), true
}

// Len returns how many traces the flight recorder currently retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// finished streams a completed trace to the JSONL sink (if any). Called
// once per trace, when its root span ends.
func (t *Tracer) finished(tr *Trace) {
	if t == nil || t.sink == nil {
		return
	}
	tree := tr.tree()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sinkErr != nil {
		return
	}
	b, err := json.Marshal(tree)
	if err == nil {
		b = append(b, '\n')
		_, err = t.sink.Write(b)
	}
	if err != nil {
		// A sick trace sink must not fail serving: stop streaming, keep
		// the in-memory ring.
		t.sinkErr = err
	}
}

// SinkErr returns the first trace-sink write error (nil while healthy).
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}
