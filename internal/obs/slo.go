package obs

import (
	"fmt"
	"sync"
	"time"

	"tempriv/internal/telemetry"
)

// SLO is one latency objective ("99% of cached results < 50ms") evaluated
// on the same span clock as the tracer and exported through the telemetry
// registry as Prometheus-style series:
//
//	tempriv_slo_<name>_good_total       cumulative in-objective observations
//	tempriv_slo_<name>_bad_total        cumulative out-of-objective observations
//	tempriv_slo_<name>_objective        the configured objective (e.g. 0.99)
//	tempriv_slo_<name>_threshold_seconds the latency threshold
//	tempriv_slo_<name>_burn_rate_fast   burn rate over the fast window
//	tempriv_slo_<name>_burn_rate_slow   burn rate over the slow window
//
// Burn rate is the standard multi-window definition: the observed bad
// fraction over a trailing window divided by the error budget (1 −
// objective). Burn 1.0 means the service is consuming budget exactly as
// fast as the objective allows; a fast-window burn ≫ 1 paired with a slow-
// window burn > 1 is the page-worthy signal (fast alone is noise, slow
// alone is stale). Windowed state lives in a fixed ring of coarse buckets,
// so an SLO costs O(1) memory regardless of traffic.
//
// A nil *SLO is the disabled handle: Observe and Sync no-op, so call
// sites wire SLOs unconditionally.
type SLO struct {
	name      string
	objective float64
	threshold time.Duration
	fast      time.Duration
	slow      time.Duration
	now       func() time.Time

	good *telemetry.Counter
	bad  *telemetry.Counter
	bFast *telemetry.Gauge
	bSlow *telemetry.Gauge

	mu        sync.Mutex
	bucketDur time.Duration
	buckets   []sloBucket // ring covering the slow window
}

// sloBucket accumulates one bucketDur-wide interval of observations.
type sloBucket struct {
	epoch     int64 // which interval this bucket currently holds
	good, bad uint64
}

// SLOOptions configure one objective.
type SLOOptions struct {
	// Name keys the exported series (metric-name characters only:
	// [a-z0-9_]); e.g. "cached_result".
	Name string
	// Objective is the target good fraction, in (0, 1); e.g. 0.99.
	Objective float64
	// Threshold is the latency bound an observation must beat to count
	// as good.
	Threshold time.Duration
	// FastWindow and SlowWindow are the two burn-rate windows
	// (defaults 5m and 1h).
	FastWindow time.Duration
	SlowWindow time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

// NewSLO registers an objective's series on reg and returns the live SLO.
// A nil registry still yields a working SLO (counters become no-op nil
// handles); invalid options return an error.
func NewSLO(reg *telemetry.Registry, o SLOOptions) (*SLO, error) {
	if o.Name == "" {
		return nil, fmt.Errorf("obs: SLO needs a name")
	}
	for i := 0; i < len(o.Name); i++ {
		c := o.Name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return nil, fmt.Errorf("obs: SLO name %q: want [a-z0-9_]", o.Name)
		}
	}
	if o.Objective <= 0 || o.Objective >= 1 {
		return nil, fmt.Errorf("obs: SLO %s objective %v outside (0, 1)", o.Name, o.Objective)
	}
	if o.Threshold <= 0 {
		return nil, fmt.Errorf("obs: SLO %s needs a positive threshold, got %v", o.Name, o.Threshold)
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 5 * time.Minute
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = time.Hour
	}
	if o.SlowWindow < o.FastWindow {
		return nil, fmt.Errorf("obs: SLO %s slow window %v shorter than fast window %v",
			o.Name, o.SlowWindow, o.FastWindow)
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	// Bucket at 1/10th of the fast window so the fast burn rate tracks
	// with ~10% time resolution; the ring must span the slow window.
	bucketDur := o.FastWindow / 10
	n := int(o.SlowWindow/bucketDur) + 1
	prefix := "tempriv_slo_" + o.Name
	s := &SLO{
		name:      o.Name,
		objective: o.Objective,
		threshold: o.Threshold,
		fast:      o.FastWindow,
		slow:      o.SlowWindow,
		now:       o.Now,
		good:      reg.Counter(prefix + "_good_total"),
		bad:       reg.Counter(prefix + "_bad_total"),
		bFast:     reg.Gauge(prefix + "_burn_rate_fast"),
		bSlow:     reg.Gauge(prefix + "_burn_rate_slow"),
		bucketDur: bucketDur,
		buckets:   make([]sloBucket, n),
	}
	reg.Gauge(prefix + "_objective").Set(o.Objective)
	reg.Gauge(prefix + "_threshold_seconds").Set(o.Threshold.Seconds())
	return s, nil
}

// Name returns the SLO's name ("" on nil).
func (s *SLO) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Observe classifies one latency against the threshold and records it.
func (s *SLO) Observe(d time.Duration) {
	if s == nil {
		return
	}
	good := d <= s.threshold
	if good {
		s.good.Inc()
	} else {
		s.bad.Inc()
	}
	epoch := s.now().UnixNano() / int64(s.bucketDur)
	s.mu.Lock()
	b := &s.buckets[int(epoch%int64(len(s.buckets)))]
	if b.epoch != epoch {
		// The ring lapped this slot; the interval it held has aged out of
		// even the slow window.
		*b = sloBucket{epoch: epoch}
	}
	if good {
		b.good++
	} else {
		b.bad++
	}
	s.mu.Unlock()
}

// windowTotals sums buckets younger than window.
func (s *SLO) windowTotals(nowEpoch int64, window time.Duration) (good, bad uint64) {
	span := int64(window / s.bucketDur)
	for i := range s.buckets {
		b := &s.buckets[i]
		if b.epoch > nowEpoch-span && b.epoch <= nowEpoch {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// burn returns bad-fraction / error-budget over the window (0 with no
// observations: an idle service burns no budget).
func (s *SLO) burn(nowEpoch int64, window time.Duration) float64 {
	good, bad := s.windowTotals(nowEpoch, window)
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - s.objective)
}

// Sync recomputes the burn-rate gauges from the current window state. The
// server calls it before every /metrics scrape so the exported burn rates
// are as fresh as the scrape.
func (s *SLO) Sync() {
	if s == nil {
		return
	}
	nowEpoch := s.now().UnixNano() / int64(s.bucketDur)
	s.mu.Lock()
	fast := s.burn(nowEpoch, s.fast)
	slow := s.burn(nowEpoch, s.slow)
	s.mu.Unlock()
	s.bFast.Set(fast)
	s.bSlow.Set(slow)
}

// BurnRates returns the current (fast, slow) burn rates without touching
// the gauges — the programmatic read path.
func (s *SLO) BurnRates() (fast, slow float64) {
	if s == nil {
		return 0, 0
	}
	nowEpoch := s.now().UnixNano() / int64(s.bucketDur)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.burn(nowEpoch, s.fast), s.burn(nowEpoch, s.slow)
}

// SLOSet is a group of objectives synced together (the /metrics hook).
type SLOSet []*SLO

// Sync refreshes every member's burn-rate gauges.
func (set SLOSet) Sync() {
	for _, s := range set {
		s.Sync()
	}
}
