package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTraceTreeStructure(t *testing.T) {
	clock := newFakeClock()
	tr := New(Options{Now: clock.Now})
	ctx, root := tr.StartTrace(context.Background(), "", "job")
	if !root.Enabled() {
		t.Fatal("root span disabled on a live tracer")
	}
	root.BindJob("job-1")

	clock.Advance(time.Millisecond)
	ctx2, queue := StartSpan(ctx, "queue")
	clock.Advance(2 * time.Millisecond)
	queue.End()

	_, attempt := StartSpan(ctx2, "attempt")
	attempt.AnnotateInt("attempt", 1)
	clock.Advance(3 * time.Millisecond)
	attempt.End()
	root.End()

	tree, ok := tr.ByJob("job-1")
	if !ok {
		t.Fatal("ByJob miss after BindJob")
	}
	if !tree.Complete || tree.DurationNS != (6 * time.Millisecond).Nanoseconds() {
		t.Fatalf("tree complete=%v duration=%d, want complete 6ms", tree.Complete, tree.DurationNS)
	}
	if tree.SpanCount != 3 || tree.Root.Name != "job" || len(tree.Root.Children) != 1 {
		t.Fatalf("unexpected tree shape: %+v", tree)
	}
	q := tree.Root.Children[0]
	if q.Name != "queue" || q.StartOffsetNS != time.Millisecond.Nanoseconds() ||
		q.DurationNS != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("queue span: %+v", q)
	}
	// The attempt was started from the queue span's context: it nests under
	// queue, not under the root.
	if len(q.Children) != 1 || q.Children[0].Name != "attempt" {
		t.Fatalf("attempt span not nested under queue: %+v", q)
	}
	if q.Children[0].Attrs["attempt"] != "1" {
		t.Fatalf("attempt attrs: %v", q.Children[0].Attrs)
	}
}

func TestOpenSpansRenderWithMinusOneDuration(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.StartTrace(context.Background(), "", "job")
	root.BindJob("j")
	_, child := StartSpan(ctx, "queue")
	_ = child
	tree, ok := tr.ByJob("j")
	if !ok {
		t.Fatal("ByJob miss")
	}
	if tree.Complete {
		t.Fatal("live trace reported complete")
	}
	if tree.DurationNS != -1 || tree.Root.DurationNS != -1 ||
		tree.Root.Children[0].DurationNS != -1 {
		t.Fatalf("open spans must render duration -1: %+v", tree)
	}
}

func TestClientTraceIDAdoptedAndEchoedDupRemints(t *testing.T) {
	tr := New(Options{})
	_, a := tr.StartTrace(context.Background(), "client-id-1", "job")
	if a.TraceID() != "client-id-1" {
		t.Fatalf("valid client ID not adopted: %q", a.TraceID())
	}
	// The same client ID again must not merge traces.
	_, b := tr.StartTrace(context.Background(), "client-id-1", "job")
	if b.TraceID() == "client-id-1" || b.TraceID() == "" {
		t.Fatalf("duplicate client ID not reminted: %q", b.TraceID())
	}
	// Garbage IDs are replaced, never rejected.
	_, c := tr.StartTrace(context.Background(), "white space!", "job")
	if c.TraceID() == "white space!" || len(c.TraceID()) != 16 {
		t.Fatalf("invalid client ID not replaced with a minted one: %q", c.TraceID())
	}
}

func TestValidTraceID(t *testing.T) {
	cases := []struct {
		id string
		ok bool
	}{
		{"abcd1234", true},
		{"A-b_c.d1", true},
		{strings.Repeat("x", 64), true},
		{strings.Repeat("x", 65), false},
		{"short", false},
		{"", false},
		{"has space", false},
		{"emoji-éid", false},
	}
	for _, c := range cases {
		if got := ValidTraceID(c.id); got != c.ok {
			t.Errorf("ValidTraceID(%q) = %v, want %v", c.id, got, c.ok)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(Options{Capacity: 2})
	ids := make([]string, 3)
	for i := range ids {
		_, root := tr.StartTrace(context.Background(), "", "job")
		root.BindJob("job-" + string(rune('a'+i)))
		ids[i] = root.TraceID()
		root.End()
	}
	if tr.Len() != 2 {
		t.Fatalf("ring holds %d traces, want 2", tr.Len())
	}
	if _, ok := tr.ByID(ids[0]); ok {
		t.Fatal("oldest trace still resolvable after eviction")
	}
	if _, ok := tr.ByJob("job-a"); ok {
		t.Fatal("oldest trace still resolvable by job after eviction")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.ByID(id); !ok {
			t.Fatalf("recent trace %s evicted", id)
		}
	}
}

func TestSpanCapDropsAndCounts(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.StartTrace(context.Background(), "", "job")
	root.BindJob("j")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	tree, _ := tr.ByJob("j")
	if tree.SpanCount != maxSpansPerTrace {
		t.Fatalf("span count %d, want cap %d", tree.SpanCount, maxSpansPerTrace)
	}
	if tree.SpansDropped != 11 { // 10 over cap + the one that hit the cap
		t.Fatalf("dropped %d, want 11", tree.SpansDropped)
	}
}

func TestJSONLSinkStreamsFinishedTraces(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Sink: &buf})
	ctx, root := tr.StartTrace(context.Background(), "sink-trace-1", "job")
	root.BindJob("j1")
	_, sp := StartSpan(ctx, "queue")
	sp.End()
	if buf.Len() != 0 {
		t.Fatal("sink written before the trace finished")
	}
	root.End()
	line := buf.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("sink line not newline-terminated: %q", line)
	}
	var tree TraceTree
	if err := json.Unmarshal([]byte(line), &tree); err != nil {
		t.Fatalf("sink line not JSON: %v", err)
	}
	if tree.TraceID != "sink-trace-1" || tree.JobID != "j1" || !tree.Complete {
		t.Fatalf("sink tree: %+v", tree)
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("sink err: %v", err)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestSinkErrorDisablesSinkKeepsRing(t *testing.T) {
	w := &failWriter{}
	tr := New(Options{Sink: w})
	for i := 0; i < 3; i++ {
		_, root := tr.StartTrace(context.Background(), "", "job")
		root.BindJob("j")
		root.End()
	}
	if w.n != 1 {
		t.Fatalf("sick sink written %d times, want 1 (first error disables it)", w.n)
	}
	if tr.SinkErr() == nil {
		t.Fatal("SinkErr nil after a write error")
	}
	if tr.Len() != 3 {
		t.Fatalf("ring lost traces after sink failure: %d", tr.Len())
	}
}

func TestDisabledPathIsInert(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartTrace(context.Background(), "ignored", "job")
	if root.Enabled() || ctx != context.Background() {
		t.Fatal("nil tracer must return the zero handle and the same ctx")
	}
	ctx2, sp := StartSpan(ctx, "child")
	if sp.Enabled() || ctx2 != ctx {
		t.Fatal("StartSpan on an untraced ctx must be inert")
	}
	// Every method must be a safe no-op on the zero handle.
	sp.Annotate("k", "v")
	sp.AnnotateInt("k", 1)
	sp.BindJob("j")
	sp.EndErr(errWrite)
	sp.End()
	if sp.TraceID() != "" || sp.JobID() != "" || sp.Child("x").Enabled() {
		t.Fatal("zero handle leaked state")
	}
	if _, ok := tr.ByJob("j"); ok {
		t.Fatal("nil tracer resolved a job")
	}
	if tr.Len() != 0 || tr.SinkErr() != nil {
		t.Fatal("nil tracer reported state")
	}
}

// TestSpanAllocationFreeWhenDisabled pins the disabled-tracer contract the
// instrumented hot paths rely on: with no span in the context, the whole
// span API costs zero heap allocations. CI runs this alongside the engine's
// allocation gates.
func TestSpanAllocationFreeWhenDisabled(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := StartSpan(ctx, "engine")
		sp.AnnotateInt("rep", 3)
		sp.Annotate("k", "v")
		child := sp.Child("chunk")
		child.EndErr(nil)
		sp.End()
		_ = SpanFromContext(ctx2)
		_ = ContextWithSpan(ctx2, sp)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.StartTrace(context.Background(), "", "job")
	root.BindJob("j")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				_, sp := StartSpan(ctx, "replicate")
				sp.AnnotateInt("rep", int64(i*50+n))
				sp.End()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.ByJob("j") // render the tree while spans mutate it
		}
	}()
	wg.Wait()
	<-done
	root.End()
	tree, _ := tr.ByJob("j")
	if tree.SpanCount != 1+8*50 {
		t.Fatalf("span count %d, want %d", tree.SpanCount, 1+8*50)
	}
}

// BenchmarkSpanDisabled measures the disabled-tracer span path — the cost
// every request pays when tracing is off. Gated to 0 allocs/op in CI
// (ci/benchgate.py).
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx2, sp := StartSpan(ctx, "engine")
		sp.AnnotateInt("rep", int64(i))
		sp.End()
		_ = ctx2
	}
}

// BenchmarkSpanEnabled is the enabled-path counterpart, for the record.
// Traces are rotated before they hit the span cap, so every iteration
// measures a real span append, not the capped drop path.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(Options{Capacity: 4})
	ctx, root := tr.StartTrace(context.Background(), "", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2048 == 2047 {
			root.End()
			ctx, root = tr.StartTrace(context.Background(), "", "bench")
		}
		_, sp := StartSpan(ctx, "engine")
		sp.End()
	}
	root.End()
}
