// Package metrics provides the streaming statistics the simulator reports:
// adversary estimation error (MSE, §2.1/§5.1), end-to-end latency, and
// buffer occupancy (time-weighted averages and distributions, §4).
//
// All accumulators are single-pass and numerically stable (Welford update),
// so a million-packet simulation does not lose precision or memory.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Welford accumulates count, mean and variance in a single numerically
// stable pass. The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation, or 0 with none.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with none.
func (w *Welford) Max() float64 { return w.max }

// Merge folds another accumulator into w (parallel-sweep reduction) using
// the Chan et al. pairwise-combination formula.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// MSE accumulates the adversary's mean square estimation error
// Σ(x̂ᵢ − xᵢ)²/m (§2.1). The zero value is ready to use.
type MSE struct {
	n   uint64
	sum float64
	// bias tracks the mean signed error, useful for diagnosing whether an
	// adversary systematically over- or under-estimates.
	bias float64
}

// Add records one (estimate, truth) pair.
func (m *MSE) Add(estimate, truth float64) {
	err := estimate - truth
	m.n++
	m.sum += err * err
	m.bias += (err - m.bias) / float64(m.n)
}

// Count returns the number of estimates scored.
func (m *MSE) Count() uint64 { return m.n }

// Value returns the mean square error, or 0 with no observations.
func (m *MSE) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// RMSE returns the root mean square error.
func (m *MSE) RMSE() float64 { return math.Sqrt(m.Value()) }

// Bias returns the mean signed error (estimate − truth).
func (m *MSE) Bias() float64 { return m.bias }

// Merge folds another MSE accumulator into m.
func (m *MSE) Merge(o *MSE) {
	if o.n == 0 {
		return
	}
	n := m.n + o.n
	m.bias = (m.bias*float64(m.n) + o.bias*float64(o.n)) / float64(n)
	m.sum += o.sum
	m.n = n
}

// TimeWeighted integrates a right-continuous step function over simulated
// time — the buffer-occupancy process N(t) of §4. Observations must be fed
// in non-decreasing time order.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	startT   float64
	integral float64
	max      float64
}

// ErrTimeReversed is returned when an observation arrives before the
// previous one.
var ErrTimeReversed = errors.New("metrics: observation time decreased")

// Observe records that the tracked value changed to v at time t. The first
// call sets the integration origin.
func (tw *TimeWeighted) Observe(t, v float64) error {
	if !tw.started {
		tw.started = true
		tw.startT, tw.lastT, tw.lastV = t, t, v
		tw.max = v
		return nil
	}
	if t < tw.lastT {
		return fmt.Errorf("%w: %v after %v", ErrTimeReversed, t, tw.lastT)
	}
	tw.integral += tw.lastV * (t - tw.lastT)
	tw.lastT, tw.lastV = t, v
	if v > tw.max {
		tw.max = v
	}
	return nil
}

// Average returns the time-weighted average of the value up to time end.
// It returns 0 if nothing was observed or no time has elapsed.
func (tw *TimeWeighted) Average(end float64) float64 {
	if !tw.started || end <= tw.startT {
		return 0
	}
	total := tw.integral
	if end > tw.lastT {
		total += tw.lastV * (end - tw.lastT)
	}
	return total / (end - tw.startT)
}

// Max returns the largest value observed.
func (tw *TimeWeighted) Max() float64 { return tw.max }

// Histogram counts observations in fixed-width bins starting at zero, with
// an overflow bin for values beyond the last edge. It backs the occupancy-
// distribution validation against the Poisson pmf of §4.
type Histogram struct {
	width    float64
	counts   []uint64
	overflow uint64
	total    uint64
}

// NewHistogram returns a histogram with the given bin width and bin count.
// It returns an error if width <= 0 or bins < 1.
func NewHistogram(width float64, bins int) (*Histogram, error) {
	if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		return nil, fmt.Errorf("metrics: histogram width must be positive and finite, got %v", width)
	}
	if bins < 1 {
		return nil, fmt.Errorf("metrics: histogram needs >= 1 bin, got %d", bins)
	}
	return &Histogram{width: width, counts: make([]uint64, bins)}, nil
}

// Add records one observation. Negative values clamp into the first bin.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < 0 {
		h.counts[0]++
		return
	}
	i := int(x / h.width)
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() uint64 { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) uint64 { return h.counts[i] }

// Bins returns the number of regular bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Overflow returns the count beyond the last bin edge.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Fraction returns the empirical probability mass of bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from bin
// midpoints. It returns an error for an empty histogram or q outside [0,1].
func (h *Histogram) Quantile(q float64) (float64, error) {
	if h.total == 0 {
		return 0, errors.New("metrics: quantile of empty histogram")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("metrics: quantile %v outside [0,1]", q)
	}
	target := q * float64(h.total)
	cum := 0.0
	for i, c := range h.counts {
		cum += float64(c)
		if cum >= target {
			return (float64(i) + 0.5) * h.width, nil
		}
	}
	return float64(len(h.counts)) * h.width, nil
}

// BatchMeansResult is the outcome of a batch-means analysis.
type BatchMeansResult struct {
	// Mean is the grand mean across batches.
	Mean float64
	// HalfWidth is the 95% confidence half-width around Mean.
	HalfWidth float64
	// Batches is the number of batches used.
	Batches int
}

// tQuantile975 holds two-sided 95% Student-t quantiles by degrees of
// freedom; beyond the table the normal quantile 1.96 is close enough.
var tQuantile975 = map[int]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	19: 2.093, 24: 2.064, 29: 2.045,
}

func tQuantile(df int) float64 {
	if q, ok := tQuantile975[df]; ok {
		return q
	}
	// Interpolate down to the nearest tabulated df below; the table is
	// dense where curvature matters and the quantile is monotone.
	for d := df; d >= 1; d-- {
		if q, ok := tQuantile975[d]; ok {
			return q
		}
	}
	return 1.96
}

// BatchMeans estimates a steady-state mean with a confidence interval from
// a single correlated sample path — the standard simulation-output
// methodology: split the path into batches long enough that batch means are
// approximately independent, then apply the Student-t interval to the batch
// means. It returns an error for fewer than 2 batches or too few samples to
// fill them.
func BatchMeans(samples []float64, batches int) (BatchMeansResult, error) {
	if batches < 2 {
		return BatchMeansResult{}, fmt.Errorf("metrics: batch means needs >= 2 batches, got %d", batches)
	}
	if len(samples) < batches {
		return BatchMeansResult{}, fmt.Errorf("metrics: %d samples cannot fill %d batches", len(samples), batches)
	}
	size := len(samples) / batches
	var grand Welford
	for b := 0; b < batches; b++ {
		var batch Welford
		for _, v := range samples[b*size : (b+1)*size] {
			batch.Add(v)
		}
		grand.Add(batch.Mean())
	}
	n := float64(batches)
	sampleVar := grand.Variance() * n / (n - 1)
	return BatchMeansResult{
		Mean:      grand.Mean(),
		HalfWidth: tQuantile(batches-1) * math.Sqrt(sampleVar/n),
		Batches:   batches,
	}, nil
}

// LatencyReport summarises an end-to-end latency distribution.
type LatencyReport struct {
	Count uint64
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
}

// Latency collects end-to-end delivery latencies and produces a summary.
// It keeps raw samples (packet counts in all experiments are bounded by the
// workload definitions, ≤ a few hundred thousand).
type Latency struct {
	w       Welford
	samples []float64
	sorted  bool
}

// Add records one delivery latency.
func (l *Latency) Add(v float64) {
	l.w.Add(v)
	l.samples = append(l.samples, v)
	l.sorted = false
}

// Count returns the number of recorded latencies.
func (l *Latency) Count() uint64 { return l.w.Count() }

// Mean returns the average latency.
func (l *Latency) Mean() float64 { return l.w.Mean() }

// quantile returns the empirical q-quantile of the recorded samples.
func (l *Latency) quantile(q float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	idx := int(q * float64(len(l.samples)-1))
	return l.samples[idx]
}

// Report summarises the recorded latencies.
func (l *Latency) Report() LatencyReport {
	return LatencyReport{
		Count: l.w.Count(),
		Mean:  l.w.Mean(),
		Std:   l.w.Std(),
		Min:   l.w.Min(),
		Max:   l.w.Max(),
		P50:   l.quantile(0.50),
		P95:   l.quantile(0.95),
		P99:   l.quantile(0.99),
	}
}
