package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/rng"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero-value Welford not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Fatalf("variance = %v, want 4", w.Variance())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Fatalf("single-obs stats wrong: %+v", w)
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset destroys naive sum-of-squares variance; Welford survives.
	var w Welford
	const offset = 1e9
	for _, x := range []float64{offset + 1, offset + 2, offset + 3} {
		w.Add(x)
	}
	if math.Abs(w.Variance()-2.0/3.0) > 1e-6 {
		t.Fatalf("variance at large offset = %v, want 2/3", w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	src := rng.New(3)
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := src.Normal(10, 3)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v != sequential %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v != sequential %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(&b) // both empty: no-op
	if a.Count() != 0 {
		t.Fatal("merging two empties produced observations")
	}
	b.Add(5)
	a.Merge(&b)
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merging into empty lost data")
	}
	var c Welford
	a.Merge(&c) // merging empty into non-empty: no-op
	if a.Count() != 1 {
		t.Fatal("merging empty changed accumulator")
	}
}

func TestMSEKnownValue(t *testing.T) {
	var m MSE
	m.Add(3, 1) // err 2, sq 4
	m.Add(0, 2) // err -2, sq 4
	m.Add(5, 5) // err 0
	if m.Count() != 3 {
		t.Fatalf("count = %d", m.Count())
	}
	if math.Abs(m.Value()-8.0/3.0) > 1e-12 {
		t.Fatalf("MSE = %v, want 8/3", m.Value())
	}
	if math.Abs(m.RMSE()-math.Sqrt(8.0/3.0)) > 1e-12 {
		t.Fatalf("RMSE = %v", m.RMSE())
	}
	if math.Abs(m.Bias()-0) > 1e-12 {
		t.Fatalf("bias = %v, want 0", m.Bias())
	}
}

func TestMSEEmpty(t *testing.T) {
	var m MSE
	if m.Value() != 0 || m.RMSE() != 0 {
		t.Fatal("empty MSE non-zero")
	}
}

func TestMSEBiasDetectsSystematicError(t *testing.T) {
	var m MSE
	for i := 0; i < 100; i++ {
		m.Add(float64(i)+10, float64(i)) // always overestimates by 10
	}
	if math.Abs(m.Bias()-10) > 1e-9 {
		t.Fatalf("bias = %v, want 10", m.Bias())
	}
	if math.Abs(m.Value()-100) > 1e-9 {
		t.Fatalf("MSE = %v, want 100", m.Value())
	}
}

func TestMSEMerge(t *testing.T) {
	var all, a, b MSE
	pairs := [][2]float64{{1, 0}, {2, 0}, {3, 5}, {4, 4}, {0, -3}}
	for i, p := range pairs {
		all.Add(p[0], p[1])
		if i < 2 {
			a.Add(p[0], p[1])
		} else {
			b.Add(p[0], p[1])
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || math.Abs(a.Value()-all.Value()) > 1e-12 {
		t.Fatalf("merged MSE %v (n=%d), want %v (n=%d)", a.Value(), a.Count(), all.Value(), all.Count())
	}
	if math.Abs(a.Bias()-all.Bias()) > 1e-12 {
		t.Fatalf("merged bias %v, want %v", a.Bias(), all.Bias())
	}
}

func TestTimeWeightedStepFunction(t *testing.T) {
	var tw TimeWeighted
	// Value 2 on [0,10), 5 on [10,20), 0 on [20,40).
	steps := []struct{ t, v float64 }{{0, 2}, {10, 5}, {20, 0}}
	for _, s := range steps {
		if err := tw.Observe(s.t, s.v); err != nil {
			t.Fatal(err)
		}
	}
	got := tw.Average(40)
	want := (2*10 + 5*10 + 0*20) / 40.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("time-weighted average = %v, want %v", got, want)
	}
	if tw.Max() != 5 {
		t.Fatalf("max = %v, want 5", tw.Max())
	}
}

func TestTimeWeightedRejectsReversedTime(t *testing.T) {
	var tw TimeWeighted
	if err := tw.Observe(10, 1); err != nil {
		t.Fatal(err)
	}
	if err := tw.Observe(5, 2); !errors.Is(err, ErrTimeReversed) {
		t.Fatalf("reversed time: %v, want ErrTimeReversed", err)
	}
}

func TestTimeWeightedEmptyAndDegenerate(t *testing.T) {
	var tw TimeWeighted
	if tw.Average(100) != 0 {
		t.Fatal("empty average non-zero")
	}
	if err := tw.Observe(50, 3); err != nil {
		t.Fatal(err)
	}
	if tw.Average(50) != 0 {
		t.Fatal("zero-elapsed average non-zero")
	}
	if got := tw.Average(60); math.Abs(got-3) > 1e-12 {
		t.Fatalf("average = %v, want 3", got)
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.5, 1.0, 2.9, 4.999, 5.0, 100, -1} {
		h.Add(x)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	wantBins := []uint64{3, 1, 1, 0, 1} // -1 clamps into bin 0
	for i, want := range wantBins {
		if got := h.Bin(i); got != want {
			t.Fatalf("bin %d = %d, want %d", i, got, want)
		}
	}
	if h.Overflow() != 2 {
		t.Fatalf("overflow = %d, want 2", h.Overflow())
	}
	if math.Abs(h.Fraction(0)-3.0/8.0) > 1e-12 {
		t.Fatalf("fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 5); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewHistogram(1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10) // uniform over [0,10)
	}
	q, err := h.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q < 4 || q > 6 {
		t.Fatalf("median = %v, want ≈ 5", q)
	}
	if _, err := h.Quantile(1.5); err == nil {
		t.Fatal("quantile > 1 accepted")
	}
	empty, err := NewHistogram(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Quantile(0.5); err == nil {
		t.Fatal("quantile of empty histogram accepted")
	}
}

func TestLatencyReport(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(float64(i))
	}
	r := l.Report()
	if r.Count != 100 {
		t.Fatalf("count = %d", r.Count)
	}
	if math.Abs(r.Mean-50.5) > 1e-12 {
		t.Fatalf("mean = %v, want 50.5", r.Mean)
	}
	if r.Min != 1 || r.Max != 100 {
		t.Fatalf("min/max = %v/%v", r.Min, r.Max)
	}
	if r.P50 < 45 || r.P50 > 55 {
		t.Fatalf("p50 = %v", r.P50)
	}
	if r.P95 < 90 || r.P95 > 100 {
		t.Fatalf("p95 = %v", r.P95)
	}
	if r.P99 < 95 || r.P99 > 100 {
		t.Fatalf("p99 = %v", r.P99)
	}
}

func TestLatencyInterleavedAddAndReport(t *testing.T) {
	var l Latency
	l.Add(3)
	l.Add(1)
	_ = l.Report() // sorts
	l.Add(2)       // must re-sort on next report
	r := l.Report()
	if r.P50 != 2 {
		t.Fatalf("p50 after interleaved add = %v, want 2", r.P50)
	}
}

// Property: Welford mean/variance agree with the two-pass formulas.
func TestWelfordMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, r := range raw {
			x := float64(r)
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, r := range raw {
			d := float64(r) - mean
			ss += d * d
		}
		variance := ss / float64(len(raw))
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-variance) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MSE equals mean of squared differences for arbitrary pairs.
func TestMSEMatchesDirectProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var m MSE
		total := 0.0
		count := 0
		for i := 0; i+1 < len(raw); i += 2 {
			e, x := float64(raw[i]), float64(raw[i+1])
			m.Add(e, x)
			total += (e - x) * (e - x)
			count++
		}
		if count == 0 {
			return true
		}
		return math.Abs(m.Value()-total/float64(count)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting a stream of (estimate, truth) pairs at any point and
// merging the two accumulators equals the single-pass accumulator — the
// invariant parallel sweep reduction relies on.
func TestMSESplitMergeMatchesSinglePassProperty(t *testing.T) {
	f := func(raw []int8, cut uint8) bool {
		var pairs [][2]float64
		for i := 0; i+1 < len(raw); i += 2 {
			pairs = append(pairs, [2]float64{float64(raw[i]), float64(raw[i+1])})
		}
		var whole, left, right MSE
		split := 0
		if len(pairs) > 0 {
			split = int(cut) % (len(pairs) + 1)
		}
		for i, p := range pairs {
			whole.Add(p[0], p[1])
			if i < split {
				left.Add(p[0], p[1])
			} else {
				right.Add(p[0], p[1])
			}
		}
		left.Merge(&right)
		return left.Count() == whole.Count() &&
			math.Abs(left.Value()-whole.Value()) < 1e-9 &&
			math.Abs(left.Bias()-whole.Bias()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMeansIIDCoverage(t *testing.T) {
	// For i.i.d. normals the interval must contain the true mean the vast
	// majority of the time.
	covered := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		src := rng.New(uint64(trial) + 1000)
		samples := make([]float64, 2000)
		for i := range samples {
			samples[i] = src.Normal(10, 4)
		}
		r, err := BatchMeans(samples, 20)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Mean-10) <= r.HalfWidth {
			covered++
		}
	}
	if covered < int(0.88*trials) {
		t.Fatalf("95%% interval covered the mean only %d/%d times", covered, trials)
	}
}

func TestBatchMeansKnownValues(t *testing.T) {
	// 4 batches of [1,1], [3,3], [5,5], [7,7]: batch means 1,3,5,7 →
	// grand mean 4, sample std sqrt(20/3).
	samples := []float64{1, 1, 3, 3, 5, 5, 7, 7}
	r, err := BatchMeans(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean != 4 || r.Batches != 4 {
		t.Fatalf("result = %+v", r)
	}
	want := 3.182 * math.Sqrt(20.0/3.0/4.0) // t(3 df) · s/√n
	if math.Abs(r.HalfWidth-want) > 1e-9 {
		t.Fatalf("half-width = %v, want %v", r.HalfWidth, want)
	}
}

func TestBatchMeansValidation(t *testing.T) {
	if _, err := BatchMeans([]float64{1, 2, 3}, 1); err == nil {
		t.Fatal("1 batch accepted")
	}
	if _, err := BatchMeans([]float64{1}, 2); err == nil {
		t.Fatal("too few samples accepted")
	}
}

func TestBatchMeansHandlesCorrelatedPath(t *testing.T) {
	// An AR(1)-like path: naive i.i.d. CI would be far too tight; the
	// batch-means interval must still cover the true mean.
	src := rng.New(77)
	samples := make([]float64, 20000)
	x := 0.0
	for i := range samples {
		x = 0.95*x + src.Normal(0, 1)
		samples[i] = 5 + x
	}
	r, err := BatchMeans(samples, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Mean-5) > r.HalfWidth+0.5 {
		t.Fatalf("mean %v ± %v far from truth 5", r.Mean, r.HalfWidth)
	}
	if r.HalfWidth < 0.05 {
		t.Fatalf("half-width %v implausibly tight for a correlated path", r.HalfWidth)
	}
}
