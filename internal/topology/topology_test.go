package topology

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/packet"
	"tempriv/internal/rng"
)

// rngNew keeps the random-deployment tests terse.
func rngNew(seed uint64) *rng.Source { return rng.New(seed) }

func TestNewContainsOnlySink(t *testing.T) {
	topo := New()
	if topo.NodeCount() != 1 {
		t.Fatalf("new topology has %d nodes, want 1 (sink)", topo.NodeCount())
	}
	if !topo.HasNode(Sink) {
		t.Fatal("new topology missing the sink")
	}
	if topo.LinkCount() != 0 {
		t.Fatalf("new topology has %d links", topo.LinkCount())
	}
}

func TestAddNodeAndLink(t *testing.T) {
	topo := New()
	topo.AddNode(1, Position{X: 1})
	topo.AddNode(2, Position{X: 2})
	if err := topo.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(Sink, 1); err != nil {
		t.Fatal(err)
	}
	if got := topo.Neighbors(1); len(got) != 2 || got[0] != Sink || got[1] != 2 {
		t.Fatalf("Neighbors(1) = %v, want [0 2]", got)
	}
	if topo.LinkCount() != 2 {
		t.Fatalf("LinkCount = %d, want 2", topo.LinkCount())
	}
}

func TestAddLinkRejectsSelfAndUnknownAndDuplicate(t *testing.T) {
	topo := New()
	topo.AddNode(1, Position{})
	if err := topo.AddLink(1, 1); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := topo.AddLink(1, 99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("link to unknown node: %v, want ErrUnknownNode", err)
	}
	if err := topo.AddLink(Sink, 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(1, Sink); err == nil {
		t.Fatal("duplicate link (reversed) accepted")
	}
}

func TestPositionOf(t *testing.T) {
	topo := New()
	topo.AddNode(5, Position{X: 3, Y: 4})
	p, err := topo.PositionOf(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.X != 3 || p.Y != 4 {
		t.Fatalf("PositionOf(5) = %+v", p)
	}
	if _, err := topo.PositionOf(77); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node: %v", err)
	}
}

func TestPositionDistance(t *testing.T) {
	a := Position{X: 0, Y: 0}
	b := Position{X: 3, Y: 4}
	if d := a.Distance(b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance = %v, want 5", d)
	}
}

func TestMarkSource(t *testing.T) {
	topo := New()
	topo.AddNode(3, Position{})
	if err := topo.MarkSource(3); err != nil {
		t.Fatal(err)
	}
	if err := topo.MarkSource(3); err != nil {
		t.Fatalf("re-marking a source: %v", err)
	}
	if err := topo.MarkSource(9); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("marking unknown source: %v", err)
	}
	if got := topo.Sources(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Sources = %v, want [3]", got)
	}
}

func TestLineTopology(t *testing.T) {
	topo, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NodeCount() != 6 {
		t.Fatalf("Line(5) has %d nodes, want 6", topo.NodeCount())
	}
	if topo.LinkCount() != 5 {
		t.Fatalf("Line(5) has %d links, want 5", topo.LinkCount())
	}
	if !topo.Connected() {
		t.Fatal("line topology not connected")
	}
	if got := topo.Sources(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Line(5) sources = %v, want [5]", got)
	}
}

func TestLineRejectsZeroHops(t *testing.T) {
	if _, err := Line(0); err == nil {
		t.Fatal("Line(0) accepted")
	}
}

func TestGridTopology(t *testing.T) {
	topo, err := Grid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NodeCount() != 12 {
		t.Fatalf("Grid(4,3) has %d nodes, want 12", topo.NodeCount())
	}
	// 4x3 grid: horizontal links 3*3=9, vertical links 4*2=8.
	if topo.LinkCount() != 17 {
		t.Fatalf("Grid(4,3) has %d links, want 17", topo.LinkCount())
	}
	if !topo.Connected() {
		t.Fatal("grid not connected")
	}
	// Interior node has 4 neighbours.
	interior := GridID(4, 1, 1)
	if got := topo.Neighbors(interior); len(got) != 4 {
		t.Fatalf("interior node has %d neighbours, want 4", len(got))
	}
	// Corner (sink) has 2.
	if got := topo.Neighbors(Sink); len(got) != 2 {
		t.Fatalf("sink corner has %d neighbours, want 2", len(got))
	}
}

func TestGridRejectsBadDimensions(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}, {300, 300}} {
		if _, err := Grid(dims[0], dims[1]); err == nil {
			t.Fatalf("Grid(%d,%d) accepted", dims[0], dims[1])
		}
	}
}

func TestGridIDMatchesPositions(t *testing.T) {
	topo, err := Grid(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	id := GridID(5, 3, 2)
	p, err := topo.PositionOf(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.X != 3 || p.Y != 2 {
		t.Fatalf("GridID(5,3,2) placed at %+v, want (3,2)", p)
	}
}

func TestMergeTreeHopCountsExact(t *testing.T) {
	hops := []int{15, 22, 9, 11}
	topo, sources, err := MergeTree(hops, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 4 {
		t.Fatalf("got %d sources, want 4", len(sources))
	}
	if !topo.Connected() {
		t.Fatal("merge tree not connected")
	}
	// Verify each source's BFS distance to the sink equals its hop count.
	for i, src := range sources {
		if got := bfsDistance(topo, src); got != hops[i] {
			t.Fatalf("source %d: BFS distance %d, want %d", i, got, hops[i])
		}
	}
}

func TestMergeTreeSharedTrunk(t *testing.T) {
	_, sources, err := MergeTree([]int{5, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 2 {
		t.Fatalf("sources = %v", sources)
	}
	// With a 2-hop trunk the total node count is 2 (trunk) + (5-2) + (6-2)
	// private nodes + sink = 10.
	topo, _, err := MergeTree([]int{5, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.NodeCount(); got != 10 {
		t.Fatalf("node count = %d, want 10", got)
	}
}

func TestMergeTreeZeroTrunk(t *testing.T) {
	topo, sources, err := MergeTree([]int{3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{3, 4} {
		if got := bfsDistance(topo, sources[i]); got != want {
			t.Fatalf("flow %d distance = %d, want %d", i, got, want)
		}
	}
}

func TestMergeTreeRejectsInvalid(t *testing.T) {
	if _, _, err := MergeTree(nil, 1); err == nil {
		t.Fatal("empty flow list accepted")
	}
	if _, _, err := MergeTree([]int{5}, -1); err == nil {
		t.Fatal("negative trunk accepted")
	}
	if _, _, err := MergeTree([]int{3}, 3); err == nil {
		t.Fatal("hop count equal to trunk length accepted")
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	topo, sources, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 4 {
		t.Fatalf("Figure1 has %d sources, want 4", len(sources))
	}
	for i, want := range Figure1HopCounts {
		if got := bfsDistance(topo, sources[i]); got != want {
			t.Fatalf("S%d hop count = %d, want %d", i+1, got, want)
		}
	}
	if got := topo.Sources(); len(got) != 4 {
		t.Fatalf("Sources() = %v", got)
	}
}

func TestConnectedDetectsIsland(t *testing.T) {
	topo := New()
	topo.AddNode(1, Position{})
	topo.AddNode(2, Position{})
	if err := topo.AddLink(Sink, 1); err != nil {
		t.Fatal(err)
	}
	if topo.Connected() {
		t.Fatal("topology with isolated node reported connected")
	}
}

// Property: every MergeTree realisation has exact hop counts for arbitrary
// small flow sets.
func TestMergeTreeHopCountProperty(t *testing.T) {
	f := func(raw []uint8, trunkRaw uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		trunk := int(trunkRaw % 4)
		hops := make([]int, len(raw))
		for i, r := range raw {
			hops[i] = trunk + 1 + int(r%20)
		}
		topo, sources, err := MergeTree(hops, trunk)
		if err != nil {
			return false
		}
		for i, src := range sources {
			if bfsDistance(topo, src) != hops[i] {
				return false
			}
		}
		return topo.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// bfsDistance computes hop distance from n to the sink independently of the
// routing package, so topology tests do not depend on routing.
func bfsDistance(topo *Topology, n packet.NodeID) int {
	dist := map[packet.NodeID]int{Sink: 0}
	frontier := []packet.NodeID{Sink}
	for len(frontier) > 0 {
		var next []packet.NodeID
		for _, u := range frontier {
			for _, v := range topo.Neighbors(u) {
				if _, ok := dist[v]; !ok {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	d, ok := dist[n]
	if !ok {
		return -1
	}
	return d
}

func TestRandomGeometricConnectedDeployment(t *testing.T) {
	src := rngNew(101)
	// Dense enough that connectivity is near-certain: 150 nodes, radius
	// 1.6 in a 10x10 field.
	topo, err := RandomGeometric(150, 10, 1.6, src)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NodeCount() != 151 {
		t.Fatalf("node count = %d, want 151", topo.NodeCount())
	}
	if !topo.Connected() {
		t.Fatal("returned deployment not connected")
	}
	// Every link respects the radio radius.
	for _, a := range topo.Nodes() {
		pa, err := topo.PositionOf(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range topo.Neighbors(a) {
			pb, err := topo.PositionOf(b)
			if err != nil {
				t.Fatal(err)
			}
			if pa.Distance(pb) > 1.6+1e-12 {
				t.Fatalf("link %v-%v spans %v > radius", a, b, pa.Distance(pb))
			}
		}
	}
	// Positions stay inside the field.
	for _, id := range topo.Nodes() {
		p, err := topo.PositionOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if p.X < 0 || p.X > 10 || p.Y < 0 || p.Y > 10 {
			t.Fatalf("node %v at %+v outside the field", id, p)
		}
	}
}

func TestRandomGeometricDeterministic(t *testing.T) {
	a, err := RandomGeometric(60, 10, 2.5, rngNew(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomGeometric(60, 10, 2.5, rngNew(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range a.Nodes() {
		pa, err := a.PositionOf(id)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.PositionOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if pa != pb {
			t.Fatalf("node %v placed at %+v vs %+v across equal seeds", id, pa, pb)
		}
	}
}

func TestRandomGeometricDisconnected(t *testing.T) {
	// Tiny radius in a big field: certainly disconnected.
	_, err := RandomGeometric(10, 100, 0.1, rngNew(3))
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("sparse deployment: %v, want ErrDisconnected", err)
	}
}

func TestRandomGeometricValidation(t *testing.T) {
	src := rngNew(1)
	if _, err := RandomGeometric(0, 10, 1, src); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RandomGeometric(10, 0, 1, src); err == nil {
		t.Fatal("zero side accepted")
	}
	if _, err := RandomGeometric(10, 10, 0, src); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := RandomGeometric(10, 10, 1, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := RandomGeometric(70000, 10, 1, src); err == nil {
		t.Fatal("node-ID overflow accepted")
	}
}
