// Package topology models sensor-network deployments: node placement and
// radio connectivity.
//
// Three builders cover everything the paper needs:
//
//   - Line: the S → F1 → … → F(N−1) → R line topology of §3.3.
//   - Grid: a w×h grid deployment with radio-range links, matching the
//     habitat-monitoring deployments the paper's motivating scenario cites.
//   - MergeTree / Figure1: the evaluation topology of §5.2 — several source
//     flows with prescribed hop counts whose paths merge progressively on a
//     shared trunk before the sink, reproducing Figure 1's four flows with
//     hop counts 15, 22, 9 and 11.
//
// Topologies are undirected connectivity graphs; package routing computes
// the sink-rooted routing tree over them.
package topology

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tempriv/internal/packet"
	"tempriv/internal/rng"
)

// Sink is the node ID of the network sink in every topology built by this
// package.
const Sink packet.NodeID = 0

// Position is a node's location on the deployment plane, in abstract metres.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance between two positions.
func (p Position) Distance(q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Topology is an undirected connectivity graph over placed nodes. The zero
// value is empty; use New.
type Topology struct {
	pos     map[packet.NodeID]Position
	adj     map[packet.NodeID][]packet.NodeID
	sources []packet.NodeID
}

// New returns an empty topology containing only the sink at the origin.
func New() *Topology {
	t := &Topology{
		pos: make(map[packet.NodeID]Position),
		adj: make(map[packet.NodeID][]packet.NodeID),
	}
	t.pos[Sink] = Position{}
	return t
}

// AddNode places a node. Adding an existing ID updates its position.
func (t *Topology) AddNode(id packet.NodeID, pos Position) {
	t.pos[id] = pos
}

// ErrUnknownNode is returned when an operation references a node that has
// not been added.
var ErrUnknownNode = errors.New("topology: unknown node")

// AddLink connects two existing nodes bidirectionally. Duplicate links and
// self-links are rejected.
func (t *Topology) AddLink(a, b packet.NodeID) error {
	if a == b {
		return fmt.Errorf("topology: self-link on %v", a)
	}
	for _, id := range []packet.NodeID{a, b} {
		if _, ok := t.pos[id]; !ok {
			return fmt.Errorf("%w: %v", ErrUnknownNode, id)
		}
	}
	for _, n := range t.adj[a] {
		if n == b {
			return fmt.Errorf("topology: duplicate link %v-%v", a, b)
		}
	}
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
	return nil
}

// HasNode reports whether id has been placed.
func (t *Topology) HasNode(id packet.NodeID) bool {
	_, ok := t.pos[id]
	return ok
}

// PositionOf returns a node's position.
func (t *Topology) PositionOf(id packet.NodeID) (Position, error) {
	p, ok := t.pos[id]
	if !ok {
		return Position{}, fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	return p, nil
}

// Neighbors returns the IDs adjacent to id, sorted ascending for determinism.
// The returned slice is a copy.
func (t *Topology) Neighbors(id packet.NodeID) []packet.NodeID {
	src := t.adj[id]
	out := make([]packet.NodeID, len(src))
	copy(out, src)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nodes returns all node IDs sorted ascending.
func (t *Topology) Nodes() []packet.NodeID {
	out := make([]packet.NodeID, 0, len(t.pos))
	for id := range t.pos {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeCount returns the number of placed nodes (including the sink).
func (t *Topology) NodeCount() int { return len(t.pos) }

// LinkCount returns the number of undirected links.
func (t *Topology) LinkCount() int {
	total := 0
	for _, ns := range t.adj {
		total += len(ns)
	}
	return total / 2
}

// Sources returns the designated traffic-source nodes, sorted ascending.
// Builders designate sources; ad-hoc topologies may also mark them with
// MarkSource.
func (t *Topology) Sources() []packet.NodeID {
	out := make([]packet.NodeID, len(t.sources))
	copy(out, t.sources)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarkSource designates an existing node as a traffic source.
func (t *Topology) MarkSource(id packet.NodeID) error {
	if !t.HasNode(id) {
		return fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	for _, s := range t.sources {
		if s == id {
			return nil
		}
	}
	t.sources = append(t.sources, id)
	return nil
}

// Connected reports whether every node can reach the sink.
func (t *Topology) Connected() bool {
	seen := map[packet.NodeID]bool{Sink: true}
	stack := []packet.NodeID{Sink}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range t.adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return len(seen) == len(t.pos)
}

// Line builds the §3.3 line topology S → F1 → … → F(hops−1) → sink with the
// given number of hops from source to sink. Node IDs count up from the sink:
// node i is i hops from the sink; the source is node hops. It returns an
// error if hops < 1.
func Line(hops int) (*Topology, error) {
	if hops < 1 {
		return nil, fmt.Errorf("topology: line needs >= 1 hop, got %d", hops)
	}
	t := New()
	for i := 1; i <= hops; i++ {
		t.AddNode(packet.NodeID(i), Position{X: float64(i)})
		if err := t.AddLink(packet.NodeID(i), packet.NodeID(i-1)); err != nil {
			return nil, err
		}
	}
	if err := t.MarkSource(packet.NodeID(hops)); err != nil {
		return nil, err
	}
	return t, nil
}

// Grid builds a w×h grid deployment with unit spacing, 4-neighbour radio
// links, and the sink at the (0,0) corner. Node IDs are assigned in
// row-major order starting after the sink. No sources are designated; callers
// mark them per scenario. It returns an error if either dimension is < 1 or
// the grid exceeds the NodeID space.
func Grid(w, h int) (*Topology, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("topology: grid dimensions must be >= 1, got %dx%d", w, h)
	}
	if w*h > math.MaxUint16 {
		return nil, fmt.Errorf("topology: grid %dx%d exceeds node ID space", w, h)
	}
	t := New()
	id := func(x, y int) packet.NodeID {
		return packet.NodeID(y*w + x) // (0,0) is the sink, ID 0
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x == 0 && y == 0 {
				continue
			}
			t.AddNode(id(x, y), Position{X: float64(x), Y: float64(y)})
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := t.AddLink(id(x, y), id(x+1, y)); err != nil {
					return nil, err
				}
			}
			if y+1 < h {
				if err := t.AddLink(id(x, y), id(x, y+1)); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// GridID returns the node ID at grid coordinate (x, y) for a grid of width
// w, matching the assignment used by Grid.
func GridID(w, x, y int) packet.NodeID {
	return packet.NodeID(y*w + x)
}

// MergeTree builds a topology with one source per entry of hopCounts, where
// source i's routing path to the sink has exactly hopCounts[i] hops. The
// final trunkLen hops before the sink are shared by every flow, modelling
// §4's progressive merging of message streams near the sink; the remainder
// of each path is private to its flow. Every hop count must therefore exceed
// trunkLen. Source IDs are returned in hopCounts order.
func MergeTree(hopCounts []int, trunkLen int) (*Topology, []packet.NodeID, error) {
	if len(hopCounts) == 0 {
		return nil, nil, errors.New("topology: merge tree needs at least one flow")
	}
	if trunkLen < 0 {
		return nil, nil, fmt.Errorf("topology: negative trunk length %d", trunkLen)
	}
	for i, h := range hopCounts {
		if h <= trunkLen {
			return nil, nil, fmt.Errorf("topology: flow %d hop count %d must exceed trunk length %d", i, h, trunkLen)
		}
	}

	t := New()
	next := packet.NodeID(1)
	alloc := func(pos Position) packet.NodeID {
		id := next
		next++
		t.AddNode(id, pos)
		return id
	}

	// Shared trunk: trunk[0] is adjacent to the sink.
	trunk := make([]packet.NodeID, trunkLen)
	prev := Sink
	for i := 0; i < trunkLen; i++ {
		trunk[i] = alloc(Position{X: -float64(i + 1)})
		if err := t.AddLink(trunk[i], prev); err != nil {
			return nil, nil, err
		}
		prev = trunk[i]
	}

	sources := make([]packet.NodeID, len(hopCounts))
	for i, hops := range hopCounts {
		// The private segment needs hops-trunkLen links, i.e.
		// hops-trunkLen-1 relay nodes between the source and the trunk head
		// (or the sink when trunkLen is 0).
		attach := Sink
		if trunkLen > 0 {
			attach = trunk[trunkLen-1]
		}
		prev := attach
		privateRelays := hops - trunkLen - 1
		for j := 0; j < privateRelays; j++ {
			relay := alloc(Position{X: float64(j + 1), Y: float64(i + 1)})
			if err := t.AddLink(relay, prev); err != nil {
				return nil, nil, err
			}
			prev = relay
		}
		src := alloc(Position{X: float64(privateRelays + 1), Y: float64(i + 1)})
		if err := t.AddLink(src, prev); err != nil {
			return nil, nil, err
		}
		if err := t.MarkSource(src); err != nil {
			return nil, nil, err
		}
		sources[i] = src
	}
	return t, sources, nil
}

// ErrDisconnected is returned by RandomGeometric when the sampled
// deployment cannot reach the sink; retry with another substream, more
// nodes, or a larger radio radius.
var ErrDisconnected = errors.New("topology: random deployment is not sink-connected")

// RandomGeometric builds the classic WSN deployment model: n sensor nodes
// placed uniformly at random in a side×side square with the sink at the
// origin corner, and a radio link between every pair of nodes (sink
// included) within the given radius — a unit-disk graph. Placement draws
// from src, so deployments are reproducible. It returns ErrDisconnected if
// any node cannot reach the sink; callers typically retry with a fresh
// substream.
func RandomGeometric(n int, side, radius float64, src *rng.Source) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: random deployment needs >= 1 node, got %d", n)
	}
	if n+1 > math.MaxUint16 {
		return nil, fmt.Errorf("topology: %d nodes exceed the node ID space", n)
	}
	if side <= 0 || math.IsNaN(side) {
		return nil, fmt.Errorf("topology: side must be positive, got %v", side)
	}
	if radius <= 0 || math.IsNaN(radius) {
		return nil, fmt.Errorf("topology: radius must be positive, got %v", radius)
	}
	if src == nil {
		return nil, errors.New("topology: nil random source")
	}
	t := New()
	for i := 1; i <= n; i++ {
		t.AddNode(packet.NodeID(i), Position{X: src.Uniform(0, side), Y: src.Uniform(0, side)})
	}
	ids := t.Nodes()
	for i, a := range ids {
		pa := t.pos[a]
		for _, b := range ids[i+1:] {
			if pa.Distance(t.pos[b]) <= radius {
				if err := t.AddLink(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	if !t.Connected() {
		return nil, ErrDisconnected
	}
	return t, nil
}

// Figure1HopCounts are the hop counts of flows S1…S4 in the paper's
// simulation topology (§5.2).
var Figure1HopCounts = []int{15, 22, 9, 11}

// Figure1TrunkLen is the number of shared hops before the sink in our
// realisation of the Figure 1 topology. The paper's figure shows the four
// snake paths converging as they approach the sink (§4: "message streams
// merge progressively"); the exact overlap is not specified, so the trunk
// length is calibrated against the paper's own headline number — "at
// 1/λ = 2, case 3 reduces the average latency by a factor of 2.5" (§5.3).
// Eight shared hops (the maximum compatible with flow S3's 9-hop path)
// yields that factor: S1 then traverses 7 private hops at per-hop effective
// delay ≈ k/λ = 20 and 8 shared hops at ≈ k/λtot = 5, giving ≈ 195 time
// units against the unlimited-buffer 465.
const Figure1TrunkLen = 8

// Figure1 builds the paper's evaluation topology: four source flows with hop
// counts 15, 22, 9 and 11 that merge onto a shared trunk before the sink.
// The returned sources are S1…S4 in paper order.
func Figure1() (*Topology, []packet.NodeID, error) {
	return MergeTree(Figure1HopCounts, Figure1TrunkLen)
}
