package resultstream

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tempriv/internal/faultfs"
	"tempriv/internal/report"
)

// testFP is a syntactically valid spec fingerprint for chunk files.
const testFP = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func testTable(scale float64) *report.Table {
	t := &report.Table{
		Title:     "latency vs 1/λ",
		RowHeader: "1/λ",
		Columns:   []string{"RCAD", "exponential"},
		Notes:     []string{"paper fig 2a"},
	}
	t.AddRow("2", 1.25*scale, 3.5*scale)
	t.AddRow("10", 0.1*scale, math.NaN())
	return t
}

func tablesEqual(a, b *report.Table) bool {
	var ra, rb bytes.Buffer
	if err := a.Render(&ra); err != nil {
		return false
	}
	if err := b.Render(&rb); err != nil {
		return false
	}
	return ra.String() == rb.String()
}

func TestTableCodecRoundTripsExactly(t *testing.T) {
	// The codec's whole job is bit-exactness: a replicate restored from a
	// chunk must feed the Welford reduction the same float64s the original
	// run did, including values with no finite decimal expansion and the
	// specials JSON cannot encode as numbers.
	gnarly := []float64{
		0, 1, -1, math.Pi, 1e-17, 1e300, -2.2250738585072014e-308,
		0.1, 2.0 / 3.0, math.NaN(), math.Inf(1), math.Inf(-1),
		math.Nextafter(1, 2), // 1 + one ulp
	}
	tab := &report.Table{Title: "gnarly", Columns: []string{"v"}}
	for _, v := range gnarly {
		tab.AddRow("r", v)
	}
	enc, err := EncodeTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeTable(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range dec.Rows {
		got, want := row.Values[0], gnarly[i]
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("value %d: got %v, want NaN", i, got)
			}
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("value %d: bits %x, want %x (%v vs %v)", i,
				math.Float64bits(got), math.Float64bits(want), got, want)
		}
	}
	// Determinism: equal tables → equal bytes.
	enc2, err := EncodeTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("EncodeTable is not deterministic")
	}
}

func TestWriteReadCycle(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter(testFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		payload, err := EncodeTable(testTable(float64(rep + 1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rep, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rr, err := s.Read(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Frames) != 3 || rr.Quarantined != 0 || rr.TornTail {
		t.Fatalf("frames=%d quarantined=%d torn=%v, want 3/0/false",
			len(rr.Frames), rr.Quarantined, rr.TornTail)
	}
	if rr.NextSeq != 3 {
		t.Fatalf("NextSeq = %d, want 3", rr.NextSeq)
	}
	for rep, frame := range rr.ByRep() {
		tab, err := DecodeTable(frame.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if !tablesEqual(tab, testTable(float64(rep+1))) {
			t.Fatalf("replicate %d round-trip mismatch", rep)
		}
	}
}

func TestReadMissingFileIsEmpty(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := s.Read(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Frames) != 0 || rr.NextSeq != 0 || rr.Quarantined != 0 {
		t.Fatalf("missing file read = %+v, want empty", rr)
	}
}

func TestTornTailToleratedAndResumable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter(testFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := EncodeTable(testTable(1))
	if err := w.Append(0, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop the last frame mid-line: the crash-mid-append signature.
	path := filepath.Join(dir, testFP+".chunks.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := bytes.Index(data, []byte("\n")) + 20
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	rr, err := s.Read(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Frames) != 1 || !rr.TornTail || rr.Quarantined != 0 {
		t.Fatalf("frames=%d torn=%v quarantined=%d, want 1/true/0",
			len(rr.Frames), rr.TornTail, rr.Quarantined)
	}

	// A resuming writer continues at NextSeq and the reappended frame is
	// readable even though the file starts with a torn fragment mid-file.
	w2, err := s.OpenWriter(testFP, rr.NextSeq)
	if err != nil {
		t.Fatal(err)
	}
	// The torn fragment has no trailing newline; a fresh append must not
	// glue onto it. Model what a resuming job does: it learned about the
	// tear from Read, so it writes defensively through the same code path a
	// failed append uses.
	w2.torn = rr.TornTail
	if err := w2.Append(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	rr2, err := s.Read(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr2.ByRep()) != 2 {
		t.Fatalf("replicates after resume = %d, want 2", len(rr2.ByRep()))
	}
}

func TestCorruptFrameQuarantinedExactly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter(testFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := EncodeTable(testTable(1))
	for rep := 0; rep < 3; rep++ {
		if err := w.Append(rep, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the middle frame's payload.
	path := filepath.Join(dir, testFP+".chunks.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	mid := lines[1]
	idx := bytes.Index(mid, []byte("1.25"))
	if idx < 0 {
		t.Fatalf("payload marker not found in %q", mid)
	}
	mid[idx] = '9'
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	rr, err := s.Read(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want exactly 1", rr.Quarantined)
	}
	byRep := rr.ByRep()
	if len(byRep) != 2 {
		t.Fatalf("surviving replicates = %d, want 2", len(byRep))
	}
	if _, ok := byRep[1]; ok {
		t.Fatal("corrupt replicate 1 survived verification")
	}
	// The rejected line is preserved for forensics.
	qdata, err := os.ReadFile(filepath.Join(dir, testFP+".quarantine.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(qdata, []byte("9.25")) {
		t.Fatalf("quarantine file does not preserve the corrupt line: %q", qdata)
	}
	// NextSeq still advances past every seen frame, so the recomputed
	// replicate appends with a fresh sequence number.
	if rr.NextSeq != 3 {
		t.Fatalf("NextSeq = %d, want 3", rr.NextSeq)
	}
}

func TestWrongFingerprintFrameQuarantined(t *testing.T) {
	otherFP := strings.Repeat("f", 64)
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter(otherFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := EncodeTable(testTable(1))
	if err := w.Append(0, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Splice the foreign frame (valid checksum, wrong owner) into testFP's
	// chunk file.
	foreign, err := os.ReadFile(filepath.Join(dir, otherFP+".chunks.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, testFP+".chunks.jsonl"), foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	rr, err := s.Read(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Frames) != 0 || rr.Quarantined != 1 {
		t.Fatalf("frames=%d quarantined=%d, want 0/1", len(rr.Frames), rr.Quarantined)
	}
}

func TestSinkResumeCycle(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// First life: persist replicates 0 and 2 (as if 1 was in flight at the
	// crash and never landed).
	var written []int
	k, err := s.Sink(testFP, 4, SinkHooks{
		Written: func(persisted int) { written = append(written, persisted) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Emit(0, true, testTable(1)); err != nil {
		t.Fatal(err)
	}
	if err := k.Emit(2, true, testTable(3)); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	if k.Persisted() != 2 || len(written) != 2 || written[1] != 2 {
		t.Fatalf("persisted=%d written=%v, want 2 and [1 2]", k.Persisted(), written)
	}

	// Second life: the surviving replicates answer Have, the missing ones
	// don't, and fresh emits append past the survivors.
	var skipped []int
	k2, err := s.Sink(testFP, 4, SinkHooks{
		Skipped: func(rep int) { skipped = append(skipped, rep) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if k2.Persisted() != 2 {
		t.Fatalf("resume persisted = %d, want 2", k2.Persisted())
	}
	if tab := k2.Have(0); tab == nil || !tablesEqual(tab, testTable(1)) {
		t.Fatal("Have(0) did not restore the persisted table")
	}
	if tab := k2.Have(1); tab != nil {
		t.Fatal("Have(1) returned a table for a never-persisted replicate")
	}
	if tab := k2.Have(2); tab == nil {
		t.Fatal("Have(2) lost the persisted table")
	}
	if err := k2.Emit(0, false, testTable(1)); err != nil { // resumed: no re-append
		t.Fatal(err)
	}
	if err := k2.Emit(1, true, testTable(2)); err != nil {
		t.Fatal(err)
	}
	if err := k2.Emit(3, true, testTable(4)); err != nil {
		t.Fatal(err)
	}
	if err := k2.Close(); err != nil {
		t.Fatal(err)
	}
	if k2.Skipped() != 2 || len(skipped) != 2 {
		t.Fatalf("skipped=%d hooks=%v, want 2 replicates", k2.Skipped(), skipped)
	}
	if k2.Persisted() != 4 {
		t.Fatalf("persisted after completion = %d, want 4", k2.Persisted())
	}

	rr, err := s.Read(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.ByRep()) != 4 || rr.Quarantined != 0 {
		t.Fatalf("final replicates=%d quarantined=%d, want 4/0", len(rr.ByRep()), rr.Quarantined)
	}
}

func TestSinkQuarantinesOutOfRangeReplicates(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter(testFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := EncodeTable(testTable(1))
	if err := w.Append(0, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(7, payload); err != nil { // beyond the spec's 4 replicates
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var quarantined int
	k, err := s.Sink(testFP, 4, SinkHooks{Quarantined: func(n int) { quarantined = n }})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if quarantined != 1 {
		t.Fatalf("quarantined hook = %d, want 1", quarantined)
	}
	if k.Persisted() != 1 {
		t.Fatalf("persisted = %d, want 1", k.Persisted())
	}
}

func TestRemoveDeletesChunkAndQuarantineFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter(testFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := EncodeTable(testTable(1))
	if err := w.Append(0, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(testFP); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, testFP+".chunks.jsonl")); !os.IsNotExist(err) {
		t.Fatal("chunk file survived Remove")
	}
	// Removing an absent fingerprint is not an error.
	if err := s.Remove(testFP); err != nil {
		t.Fatal(err)
	}
}

func TestAppendENOSPCDegradesAndRecovers(t *testing.T) {
	faulty := faultfs.NewFaulty(nil)
	s, err := Open(t.TempDir(), Options{FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter(testFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := EncodeTable(testTable(1))
	if err := w.Append(0, payload); err != nil {
		t.Fatal(err)
	}

	// Disk fills: the next appends fail (including the resync newline, so
	// the writer goes torn), but nothing panics and the file stays usable.
	faulty.Set(faultfs.OpWrite, faultfs.Fault{Err: faultfs.ErrNoSpace})
	if err := w.Append(1, payload); err == nil {
		t.Fatal("append on full disk did not error")
	}

	// Disk heals: appends resume, the torn flag re-frames the next line.
	faulty.Clear(faultfs.OpWrite)
	if err := w.Append(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err := s.Read(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.ByRep()) != 2 || rr.Quarantined != 0 {
		t.Fatalf("replicates=%d quarantined=%d after ENOSPC recovery, want 2/0",
			len(rr.ByRep()), rr.Quarantined)
	}
}

func TestTornInjectedWriteQuarantinedOnRead(t *testing.T) {
	faulty := faultfs.NewFaulty(nil)
	s, err := Open(t.TempDir(), Options{FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter(testFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := EncodeTable(testTable(1))
	if err := w.Append(0, payload); err != nil {
		t.Fatal(err)
	}
	// One torn write (half the frame lands), then the disk heals enough for
	// the resync newline.
	faulty.Set(faultfs.OpWrite, faultfs.Fault{Err: faultfs.ErrIO, Torn: true, After: 0})
	err = w.Append(1, payload)
	faulty.ClearAll()
	if err == nil {
		t.Fatal("torn write did not error")
	}
	if err := w.Append(2, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rr, err := s.Read(testFP)
	if err != nil {
		t.Fatal(err)
	}
	byRep := rr.ByRep()
	if _, ok := byRep[0]; !ok {
		t.Fatal("frame before the torn write was lost")
	}
	if _, ok := byRep[2]; !ok {
		t.Fatal("frame after the torn write was lost")
	}
	if _, ok := byRep[1]; ok {
		t.Fatal("half-written frame passed verification")
	}
}

func TestFsyncFailureSurfacesOnAppend(t *testing.T) {
	faulty := faultfs.NewFaulty(nil)
	s, err := Open(t.TempDir(), Options{FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter(testFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	faulty.Set(faultfs.OpSync, faultfs.Fault{Err: faultfs.ErrIO})
	payload, _ := EncodeTable(testTable(1))
	if err := w.Append(0, payload); err == nil {
		t.Fatal("append with failing fsync reported durability it does not have")
	}
}

func TestWriterRejectsBadInput(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenWriter("not-a-fingerprint", 0); err == nil {
		t.Fatal("invalid fingerprint accepted")
	}
	if _, err := s.OpenWriter(testFP, -1); err == nil {
		t.Fatal("negative start sequence accepted")
	}
	w, err := s.OpenWriter(testFP, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(-1, []byte(`{}`)); err == nil {
		t.Fatal("negative replicate accepted")
	}
	if err := w.Append(0, []byte(`{broken`)); err == nil {
		t.Fatal("invalid JSON payload accepted")
	}
	if _, err := s.Sink(testFP, 0, SinkHooks{}); err == nil {
		t.Fatal("zero-replicate sink accepted")
	}
}

// TestChecksumCoversEveryField pins the frame authentication property: any
// mutated field invalidates the sum.
func TestChecksumCoversEveryField(t *testing.T) {
	payload, _ := EncodeTable(testTable(1))
	frame := Frame{Seq: 5, FP: testFP, Rep: 2, Payload: payload}
	sum, err := frame.checksum()
	if err != nil {
		t.Fatal(err)
	}
	frame.Sum = sum
	mutations := []func(f *Frame){
		func(f *Frame) { f.Seq++ },
		func(f *Frame) { f.Rep++ },
		func(f *Frame) { f.FP = strings.Repeat("e", 64) },
		func(f *Frame) { f.Payload = json.RawMessage(`{}`) },
	}
	for i, mutate := range mutations {
		m := frame
		mutate(&m)
		got, err := m.checksum()
		if err != nil {
			t.Fatal(err)
		}
		if got == m.Sum {
			t.Fatalf("mutation %d not detected by checksum", i)
		}
	}
}
