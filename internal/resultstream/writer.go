package resultstream

import (
	"encoding/json"
	"fmt"

	"tempriv/internal/faultfs"
)

// Writer appends checksummed frames to one fingerprint's chunk file. Not
// safe for concurrent use — the replicate engine emits in replicate order
// from a single goroutine, which is also what keeps chunk files
// deterministic for a given resume state.
type Writer struct {
	store *Store
	fp    string
	f     faultfs.File
	seq   int
	// sinceSync counts appends since the last fsync (SyncEvery cadence).
	sinceSync int
	// torn records that a failed append may have left a partial line; the
	// next append prepends a newline to restore framing, exactly as the
	// job journal does.
	torn bool
}

// OpenWriter opens (creating as needed) the chunk file for fingerprint in
// append mode. nextSeq is the first frame's sequence number — 0 for a
// fresh job, ReadResult.NextSeq when resuming past surviving frames.
func (s *Store) OpenWriter(fingerprint string, nextSeq int) (*Writer, error) {
	if !validFingerprint.MatchString(fingerprint) {
		return nil, fmt.Errorf("resultstream: invalid fingerprint %q", fingerprint)
	}
	if nextSeq < 0 {
		return nil, fmt.Errorf("resultstream: negative start sequence %d", nextSeq)
	}
	f, err := s.opts.FS.OpenAppend(s.chunkPath(fingerprint))
	if err != nil {
		return nil, fmt.Errorf("resultstream: opening chunk file: %w", err)
	}
	return &Writer{store: s, fp: fingerprint, f: f, seq: nextSeq}, nil
}

// Append persists one replicate's payload as a checksummed frame and
// advances the sequence. On error the frame is lost (the replicate will
// recompute after a crash) but the file stays parseable: a best-effort
// newline re-synchronizes framing after a torn write, and the reader
// tolerates whatever lands.
func (w *Writer) Append(rep int, payload []byte) error {
	if w.f == nil {
		return fmt.Errorf("resultstream: append on closed writer")
	}
	if rep < 0 {
		return fmt.Errorf("resultstream: negative replicate index %d", rep)
	}
	if !json.Valid(payload) {
		return fmt.Errorf("resultstream: frame payload is not valid JSON")
	}
	frame := Frame{Seq: w.seq, FP: w.fp, Rep: rep, Payload: json.RawMessage(payload)}
	sum, err := frame.checksum()
	if err != nil {
		return err
	}
	frame.Sum = sum
	line, err := json.Marshal(frame)
	if err != nil {
		return fmt.Errorf("resultstream: marshaling frame %d: %w", frame.Seq, err)
	}
	line = append(line, '\n')
	if w.torn {
		line = append([]byte("\n"), line...)
	}
	if _, err := w.f.Write(line); err != nil {
		if _, nlErr := w.f.Write([]byte("\n")); nlErr == nil {
			w.torn = false
		} else {
			w.torn = true
		}
		return fmt.Errorf("resultstream: appending frame %d: %w", frame.Seq, err)
	}
	w.torn = false
	w.seq++
	w.sinceSync++
	if w.store.opts.SyncEvery > 0 && w.sinceSync >= w.store.opts.SyncEvery {
		w.sinceSync = 0
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("resultstream: fsync after frame %d: %w", frame.Seq, err)
		}
	}
	return nil
}

// Close fsyncs any unsynced frames and releases the file handle.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	var err error
	if w.sinceSync > 0 || w.store.opts.SyncEvery < 0 {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
