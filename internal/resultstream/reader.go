package resultstream

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadResult is the verified content of one fingerprint's chunk file.
type ReadResult struct {
	// Frames holds every frame that survived verification, in file order.
	// A replicate recomputed after quarantine appears twice; ByRep resolves
	// to the last valid frame.
	Frames []Frame
	// Quarantined counts frames rejected by verification (bad JSON, wrong
	// fingerprint, checksum mismatch, negative indices). Each rejected line
	// is preserved in the quarantine file.
	Quarantined int
	// TornTail records that the file ended mid-line — the expected
	// signature of a crash during an append. The torn line is dropped
	// without being counted as quarantine.
	TornTail bool
	// NextSeq is the sequence number a resuming Writer should continue at.
	NextSeq int
}

// ByRep returns the valid frames keyed by replicate index; when a
// replicate was written more than once (quarantine then recompute), the
// last valid frame wins.
func (r *ReadResult) ByRep() map[int]Frame {
	out := make(map[int]Frame, len(r.Frames))
	for _, f := range r.Frames {
		out[f.Rep] = f
	}
	return out
}

// Read loads and verifies the chunk file for a fingerprint. A missing file
// is an empty (not error) result — the caller starts from replicate zero.
// Verification is fail-closed per frame: anything unverifiable is
// quarantined and the caller recomputes that replicate; only the torn tail
// of a crash mid-append is tolerated silently.
func (s *Store) Read(fingerprint string) (*ReadResult, error) {
	if !validFingerprint.MatchString(fingerprint) {
		return nil, fmt.Errorf("resultstream: invalid fingerprint %q", fingerprint)
	}
	data, err := s.opts.FS.ReadFile(s.chunkPath(fingerprint))
	if err != nil {
		if os.IsNotExist(err) {
			return &ReadResult{}, nil
		}
		return nil, fmt.Errorf("resultstream: reading chunks: %w", err)
	}
	res := &ReadResult{}
	start := 0
	for start < len(data) {
		end := start
		for end < len(data) && data[end] != '\n' {
			end++
		}
		line := data[start:end]
		truncated := end == len(data)
		start = end + 1
		if len(line) == 0 {
			continue
		}
		if truncated {
			res.TornTail = true
			continue
		}
		frame, ok := s.verifyLine(fingerprint, line)
		if !ok {
			res.Quarantined++
			s.quarantineLine(fingerprint, line)
			continue
		}
		res.Frames = append(res.Frames, frame)
		if frame.Seq >= res.NextSeq {
			res.NextSeq = frame.Seq + 1
		}
	}
	return res, nil
}

// verifyLine parses and authenticates one frame line.
func (s *Store) verifyLine(fingerprint string, line []byte) (Frame, bool) {
	var frame Frame
	if err := json.Unmarshal(line, &frame); err != nil {
		return Frame{}, false
	}
	if frame.FP != fingerprint || frame.Rep < 0 || frame.Seq < 0 || len(frame.Payload) == 0 {
		return Frame{}, false
	}
	want, err := frame.checksum()
	if err != nil || frame.Sum != want {
		return Frame{}, false
	}
	return frame, true
}
