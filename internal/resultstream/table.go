package resultstream

import (
	"fmt"
	"math"
	"strconv"

	"encoding/json"

	"tempriv/internal/report"
)

// tableDoc is the wire form of a report.Table. Values are strings, not JSON
// numbers, for two reasons: JSON cannot represent NaN/±Inf (tables use NaN
// for absent cells), and the codec must round-trip every float64 exactly so
// a resumed run's reduction is bit-identical to an uninterrupted one.
// strconv's shortest 'g' form is exact by construction (it is defined as
// the shortest decimal that parses back to the same bits).
type tableDoc struct {
	Title     string   `json:"title,omitempty"`
	RowHeader string   `json:"row_header,omitempty"`
	Columns   []string `json:"columns"`
	Rows      []rowDoc `json:"rows"`
	Notes     []string `json:"notes,omitempty"`
}

type rowDoc struct {
	Label  string   `json:"label"`
	Values []string `json:"values"`
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func parseCell(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// EncodeTable renders a table as its canonical chunk payload: compact JSON
// with every value in exact (shortest round-trip) decimal form. Equal
// tables encode to equal bytes.
func EncodeTable(t *report.Table) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("resultstream: encoding nil table")
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("resultstream: encoding table: %w", err)
	}
	doc := tableDoc{
		Title:     t.Title,
		RowHeader: t.RowHeader,
		Columns:   t.Columns,
		Rows:      make([]rowDoc, len(t.Rows)),
		Notes:     t.Notes,
	}
	for i, r := range t.Rows {
		values := make([]string, len(r.Values))
		for j, v := range r.Values {
			values[j] = formatCell(v)
		}
		doc.Rows[i] = rowDoc{Label: r.Label, Values: values}
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("resultstream: encoding table: %w", err)
	}
	return b, nil
}

// DecodeTable parses a chunk payload back into the exact table EncodeTable
// serialized: every float64 is restored bit-for-bit (NaN cells come back as
// the canonical math.NaN the experiments produce).
func DecodeTable(data []byte) (*report.Table, error) {
	var doc tableDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("resultstream: decoding table: %w", err)
	}
	t := &report.Table{
		Title:     doc.Title,
		RowHeader: doc.RowHeader,
		Columns:   doc.Columns,
		Notes:     doc.Notes,
	}
	for _, r := range doc.Rows {
		values := make([]float64, len(r.Values))
		for j, s := range r.Values {
			v, err := parseCell(s)
			if err != nil {
				return nil, fmt.Errorf("resultstream: decoding table row %q: %w", r.Label, err)
			}
			values[j] = v
		}
		t.AddRow(r.Label, values...)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("resultstream: decoded table: %w", err)
	}
	return t, nil
}
