// Package resultstream is the streaming result substrate of the serving
// stack: per-replicate results are persisted as checksummed JSONL chunk
// frames the moment each replicate finishes, instead of materializing only
// when a whole job completes. A crash at replicate 199/200 of a long sweep
// now costs one replicate, not two hundred: the next run of the same spec
// reads the surviving chunks back (checksum-verified), skips every
// replicate that already persisted, and recomputes only what is missing or
// corrupt — producing a final artifact byte-identical to an uninterrupted
// run, because every scenario is seed-deterministic and the replicate
// reduction is order-fixed.
//
// Chunk file format (one frame per line, `<fingerprint>.chunks.jsonl`):
//
//	{"seq":0,"fp":"<spec sha256>","rep":0,"payload":{<table>},"sum":"<sha256>"}
//
// seq is the append ordinal within the file, fp the owning spec's
// fingerprint, rep the replicate index (seed = base seed + rep), payload
// the replicate's result table in the exact codec of EncodeTable, and sum
// the hex SHA-256 of the frame serialized with an empty sum — so every
// frame is independently verifiable.
//
// The reader is torn-tail-tolerant and otherwise fail-closed: a final line
// without its newline is the expected signature of a crash mid-append and
// is silently dropped (the replicate recomputes); any other damage — a
// flipped byte, a checksum mismatch, a frame from the wrong spec, an
// out-of-range replicate — quarantines exactly that frame (preserved in
// `<fingerprint>.quarantine.jsonl` for forensics, counted, never used) and
// the replicate recomputes. Corrupt data can reach a result only by
// forging a SHA-256 collision.
//
// All disk access goes through faultfs.FS. Writes degrade rather than
// fail: a chunk append that hits ENOSPC/EIO loses durability for that
// replicate only (availability over durability, as in internal/jobstore) —
// the job still completes from memory.
package resultstream

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"tempriv/internal/faultfs"
)

// Frame is one persisted replicate result.
type Frame struct {
	// Seq is the append ordinal within the chunk file.
	Seq int `json:"seq"`
	// FP is the owning scenario's spec fingerprint.
	FP string `json:"fp"`
	// Rep is the replicate index (the replicate ran under seed base+Rep).
	Rep int `json:"rep"`
	// Payload is the replicate's result table, encoded by EncodeTable.
	Payload json.RawMessage `json:"payload"`
	// Sum is the hex SHA-256 of this frame marshaled with Sum empty.
	Sum string `json:"sum,omitempty"`
}

// checksum returns the frame's canonical digest: the hex SHA-256 of the
// frame serialized with an empty Sum. Marshaling a fixed struct with a
// RawMessage payload is deterministic, so verification re-derives the
// exact signed bytes.
func (f Frame) checksum() (string, error) {
	f.Sum = ""
	b, err := json.Marshal(f)
	if err != nil {
		return "", fmt.Errorf("resultstream: marshaling frame %d: %w", f.Seq, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// validFingerprint matches the 64-hex content addresses chunk files are
// keyed by (the same shape internal/resultcache enforces).
var validFingerprint = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Options configure a Store.
type Options struct {
	// FS is the filesystem seam (nil = the real OS filesystem).
	FS faultfs.FS
	// SyncEvery is the fsync cadence: fsync after every Nth appended frame
	// (default 1 — every frame is durable before the engine moves on).
	// Negative syncs only on Writer.Close.
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	return o
}

// Store is a directory of per-spec chunk files, keyed by spec fingerprint.
// Safe for concurrent use across jobs; one fingerprint must have at most
// one open Writer at a time (the job queue serializes runs per spec).
type Store struct {
	dir  string
	opts Options

	mu sync.Mutex // guards quarantine-file appends
}

// Open prepares a chunk store rooted at dir, creating it as needed.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstream: empty store directory")
	}
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstream: preparing %s: %w", dir, err)
	}
	return &Store{dir: dir, opts: opts}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) chunkPath(fingerprint string) string {
	return filepath.Join(s.dir, fingerprint+".chunks.jsonl")
}

func (s *Store) quarantinePath(fingerprint string) string {
	return filepath.Join(s.dir, fingerprint+".quarantine.jsonl")
}

// Remove deletes the chunk (and quarantine) files for a fingerprint —
// called once the finished artifact is safely in the result cache, which
// supersedes the per-replicate stream.
func (s *Store) Remove(fingerprint string) error {
	if !validFingerprint.MatchString(fingerprint) {
		return fmt.Errorf("resultstream: invalid fingerprint %q", fingerprint)
	}
	err := s.opts.FS.Remove(s.chunkPath(fingerprint))
	if os.IsNotExist(err) {
		err = nil
	}
	if qerr := s.opts.FS.Remove(s.quarantinePath(fingerprint)); qerr != nil && !os.IsNotExist(qerr) && err == nil {
		err = qerr
	}
	return err
}

// quarantineLine preserves one rejected frame line for forensics. Best
// effort: a sick disk must not turn a read-side quarantine into a failure.
func (s *Store) quarantineLine(fingerprint string, line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.opts.FS.OpenAppend(s.quarantinePath(fingerprint))
	if err != nil {
		return
	}
	defer f.Close()
	_, _ = f.Write(append(append([]byte(nil), line...), '\n'))
}
