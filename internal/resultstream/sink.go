package resultstream

import (
	"fmt"

	"tempriv/internal/obs"
	"tempriv/internal/report"
)

// SinkHooks observe a Sink's activity (telemetry and progress reporting).
// All hooks fire from the engine's single coordinating goroutine.
type SinkHooks struct {
	// Span, when enabled, parents a "chunk" trace span around every fresh
	// chunk append (encode + write + any fsync), annotated with the
	// replicate index — the chunk-persistence stage of a job's trace
	// (internal/obs). The engine's sink calls are single-goroutine, but no
	// context flows through the ReplicateSink seam, so the span rides the
	// hooks instead. The zero SpanRef disables it for free.
	Span obs.SpanRef
	// Written fires after each fresh frame persists, with the total number
	// of distinct replicates now persisted (the chunk high-water mark).
	Written func(persisted int)
	// Skipped fires for each replicate served from a surviving chunk
	// instead of recomputed.
	Skipped func(rep int)
	// Quarantined fires once at open when n > 0 frames were rejected.
	Quarantined func(n int)
	// AppendError observes a failed chunk append. The job proceeds — the
	// replicate's durability is lost, not its result.
	AppendError func(err error)
}

// Sink adapts one fingerprint's chunk state to the replicate engine's sink
// interface (experiment.ReplicateSink): Have answers resume queries from
// the verified surviving chunks, Emit persists fresh replicates as they
// complete. Not safe for concurrent use: the engine calls Have and Emit
// from its coordinating goroutine only, Emit in replicate order — which is
// also what keeps a resumed chunk file deterministic.
type Sink struct {
	store *Store
	fp    string
	hooks SinkHooks
	have  map[int]*report.Table
	w     *Writer
	// persisted is the chunk high-water mark: distinct replicates durable
	// on disk (survivors plus fresh appends).
	persisted int
	// skipped counts Have hits this run.
	skipped int
}

// Sink opens the resume state for a fingerprint expecting the given
// replicate count: surviving chunks are read and verified, corrupt frames
// quarantined (hooks.Quarantined), and a writer positioned after the last
// surviving frame. Frames for replicate indices at or beyond replicates
// are quarantined too — they cannot belong to this spec's seed range.
func (s *Store) Sink(fingerprint string, replicates int, hooks SinkHooks) (*Sink, error) {
	if replicates < 1 {
		return nil, fmt.Errorf("resultstream: sink needs replicates >= 1, got %d", replicates)
	}
	rr, err := s.Read(fingerprint)
	if err != nil {
		return nil, err
	}
	quarantined := rr.Quarantined
	have := make(map[int]*report.Table)
	for _, frame := range rr.Frames {
		if frame.Rep >= replicates {
			quarantined++
			continue
		}
		tab, err := DecodeTable(frame.Payload)
		if err != nil {
			// The checksum held but the payload does not decode — a writer
			// from a different build or a forged frame. Fail closed.
			quarantined++
			continue
		}
		have[frame.Rep] = tab
	}
	if quarantined > 0 && hooks.Quarantined != nil {
		hooks.Quarantined(quarantined)
	}
	w, err := s.OpenWriter(fingerprint, rr.NextSeq)
	if err != nil {
		return nil, err
	}
	// A torn tail means the file ends mid-line; the first fresh append must
	// open with a newline or it would glue onto the fragment and lose both.
	w.torn = rr.TornTail
	return &Sink{store: s, fp: fingerprint, hooks: hooks, have: have, w: w, persisted: len(have)}, nil
}

// Persisted returns the current chunk high-water mark: how many distinct
// replicates are durable on disk.
func (k *Sink) Persisted() int { return k.persisted }

// Skipped returns how many replicates this run served from chunks.
func (k *Sink) Skipped() int { return k.skipped }

// Have returns the surviving table for a replicate, or nil if it must be
// computed. Implements the resume side of experiment.ReplicateSink.
func (k *Sink) Have(rep int) *report.Table {
	tab := k.have[rep]
	if tab != nil {
		k.skipped++
		if k.hooks.Skipped != nil {
			k.hooks.Skipped(rep)
		}
	}
	return tab
}

// Emit persists a freshly computed replicate (resumed replicates pass
// fresh=false and are already durable). A failed append degrades to lost
// durability for this replicate — the run continues.
func (k *Sink) Emit(rep int, fresh bool, tab *report.Table) error {
	if !fresh {
		return nil
	}
	span := k.hooks.Span.Child("chunk")
	span.AnnotateInt("rep", int64(rep))
	payload, err := EncodeTable(tab)
	if err == nil {
		err = k.w.Append(rep, payload)
	}
	span.EndErr(err)
	if err != nil {
		if k.hooks.AppendError != nil {
			k.hooks.AppendError(err)
		}
		return nil
	}
	k.persisted++
	if k.hooks.Written != nil {
		k.hooks.Written(k.persisted)
	}
	return nil
}

// Close releases the underlying writer.
func (k *Sink) Close() error {
	if k.w == nil {
		return nil
	}
	err := k.w.Close()
	k.w = nil
	return err
}
