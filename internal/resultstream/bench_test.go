package resultstream

import (
	"fmt"
	"testing"
)

// benchPayload is a realistic replicate table: eleven sweep rows of two
// value columns, the scale experiments persist per replicate.
func benchPayload(b *testing.B) []byte {
	b.Helper()
	tab := testTable(1)
	for i := 1; i < 10; i++ {
		tab.AddRow(fmt.Sprintf("row-%d", i), 1.5*float64(i), -2.25*float64(i))
	}
	payload, err := EncodeTable(tab)
	if err != nil {
		b.Fatal(err)
	}
	return payload
}

// BenchmarkWriterAppendNoSync is the raw chunk frame cost (marshal +
// checksum + buffered write) with fsync deferred to Close — the cadence a
// long sweep with SyncEvery<0 pays per replicate.
func BenchmarkWriterAppendNoSync(b *testing.B) {
	store, err := Open(b.TempDir(), Options{SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	w, err := store.OpenWriter(testFP, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := benchPayload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(i, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriterAppendFsyncEach is the default durability cadence: one
// fsync per replicate chunk.
func BenchmarkWriterAppendFsyncEach(b *testing.B) {
	store, err := Open(b.TempDir(), Options{SyncEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	w, err := store.OpenWriter(testFP, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := benchPayload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(i, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadVerify is the resume-time cost: re-read and checksum-verify
// a 64-frame chunk file.
func BenchmarkReadVerify(b *testing.B) {
	store, err := Open(b.TempDir(), Options{SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	w, err := store.OpenWriter(testFP, 0)
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPayload(b)
	for i := 0; i < 64; i++ {
		if err := w.Append(i, payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := store.Read(testFP)
		if err != nil {
			b.Fatal(err)
		}
		if len(rr.Frames) != 64 {
			b.Fatalf("frames = %d", len(rr.Frames))
		}
	}
}

// BenchmarkTableCodecRoundTrip is the exact-float encode+decode pair every
// persisted replicate pays.
func BenchmarkTableCodecRoundTrip(b *testing.B) {
	tab := testTable(1)
	for i := 1; i < 10; i++ {
		tab.AddRow(fmt.Sprintf("row-%d", i), 1.5*float64(i), -2.25*float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := EncodeTable(tab)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeTable(payload); err != nil {
			b.Fatal(err)
		}
	}
}
