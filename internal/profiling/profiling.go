// Package profiling wires the -cpuprofile/-memprofile flags of the CLIs to
// runtime/pprof: a CPU profile covering the whole run and a heap profile
// written on exit. It exists so every command flushes profiles identically
// on all exit paths, error returns included.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arms a heap-profile write to
// memPath; either path may be empty to disable that profile. It returns
// cleanup functions for the caller to run in reverse registration order on
// exit — the idiom cmd/rcadsim and cmd/sweep use for all their artifact
// files — which stop the CPU profile and write the heap snapshot before
// closing the files.
//
// On error the cleanups registered so far are still returned, so a caller
// that appends them before checking the error never leaks a started profile
// or an open file.
func Start(cpuPath, memPath string) ([]func() error, error) {
	var cleanups []func() error
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return cleanups, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return cleanups, fmt.Errorf("starting CPU profile: %w", err)
		}
		cleanups = append(cleanups, f.Close, func() error {
			pprof.StopCPUProfile()
			return nil
		})
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return cleanups, fmt.Errorf("creating heap profile: %w", err)
		}
		cleanups = append(cleanups, f.Close, func() error {
			// An up-to-date profile needs the GC's latest accounting of what
			// is actually live.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("writing heap profile: %w", err)
			}
			return nil
		})
	}
	return cleanups, nil
}
