package experiment

import (
	"fmt"
	"math"

	"tempriv/internal/buffer"
	"tempriv/internal/infotheory"
	"tempriv/internal/packet"
	"tempriv/internal/queueing"
	"tempriv/internal/report"
	"tempriv/internal/rng"
	"tempriv/internal/sim"
)

// Eq2EPI validates §3.1's entropy-power-inequality lower bound (eq. 2)
// against exact mutual information for the Gaussian case (where the bound is
// tight) and empirical mutual information for the exponential case (the
// paper's delay distribution).
func Eq2EPI(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	// Ratios stop at 4: beyond that the binned estimator's discretisation
	// bias (it cannot exceed ln(bins) and loses information to binning)
	// pulls the empirical value below the true MI, making the bound
	// comparison meaningless.
	ratios := []float64{0.1, 0.25, 0.5, 1, 2, 4}
	const samples = 100000
	const bins = 40

	t := &report.Table{
		Title:     "Eq. (2): entropy-power-inequality lower bound on I(X;Z), Z = X + Y",
		RowHeader: "var(X)/var(Y)",
		Columns: []string{
			"gauss-exact-MI", "gauss-EPI-bound",
			"exp-empirical-MI", "exp-quantile-MI", "exp-EPI-bound",
		},
		Notes: []string{
			"MI in nats; EPI bound = ½ln(e^{2h(X)}+e^{2h(Y)}) − h(Y)",
			"Gaussian columns must coincide (EPI is tight for Gaussians)",
			"exponential bound must stay below the (upward-biased) empirical MI",
			"quantile-binned column uses equal-frequency bins: less discretisation bias on skewed marginals",
			fmt.Sprintf("%d samples, %d×%d histogram, seed=%d", samples, bins, bins, p.Seed),
		},
	}

	src := rng.New(p.Seed)
	for _, ratio := range ratios {
		varY := 1.0
		varX := ratio * varY

		gaussExact, err := infotheory.GaussianChannelMI(varX, varY)
		if err != nil {
			return nil, err
		}
		hXg, err := infotheory.GaussianEntropy(varX)
		if err != nil {
			return nil, err
		}
		hYg, err := infotheory.GaussianEntropy(varY)
		if err != nil {
			return nil, err
		}
		gaussBound := infotheory.EPILowerBound(hXg, hYg)

		// Exponential X and Y with the same variance ratio: var = mean².
		meanX := math.Sqrt(varX)
		meanY := math.Sqrt(varY)
		hXe, err := infotheory.ExponentialEntropy(meanX)
		if err != nil {
			return nil, err
		}
		hYe, err := infotheory.ExponentialEntropy(meanY)
		if err != nil {
			return nil, err
		}
		expBound := infotheory.EPILowerBound(hXe, hYe)

		sub := src.Split(fmt.Sprintf("epi/%g", ratio))
		xs := make([]float64, samples)
		zs := make([]float64, samples)
		for i := range xs {
			x := sub.Exponential(meanX)
			xs[i] = x
			zs[i] = x + sub.Exponential(meanY)
		}
		expMI, err := infotheory.BinnedMI(xs, zs, bins)
		if err != nil {
			return nil, err
		}
		expQMI, err := infotheory.QuantileBinnedMI(xs, zs, bins)
		if err != nil {
			return nil, err
		}

		t.AddRow(formatSweepLabel(ratio), gaussExact, gaussBound, expMI, expQMI, expBound)
	}
	return t, nil
}

// Eq4Bound validates §3.2's Anantharam–Verdú bound (eq. 4): the empirical
// mutual information between the j-th creation time of a Poisson(λ) source
// and its exponentially delayed observation stays below ln(1 + jµ/λ), and
// both shrink as the mean delay 1/µ grows relative to 1/λ.
func Eq4Bound(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	lambda := 1 / p.Interarrivals[0] // paper's highest traffic rate (1/λ = 2)
	mu := 1 / p.MeanDelay
	const samples = 60000
	const bins = 30

	t := &report.Table{
		Title:     "Eq. (4): I(Xj;Zj) vs the Anantharam–Verdú bound ln(1+jµ/λ)",
		RowHeader: "packet index j",
		Columns:   []string{"empirical-MI", "AV-bound", "bound-cumulative"},
		Notes: []string{
			fmt.Sprintf("Poisson source λ=%g, exponential delay µ=%g (1/µ=%g)", lambda, mu, p.MeanDelay),
			"Xj is j-stage Erlangian; Zj = Xj + Yj; MI in nats",
			fmt.Sprintf("%d samples per index, seed=%d", samples, p.Seed),
			"expected: empirical ≤ bound at every j; both grow slowly with j",
		},
	}

	src := rng.New(p.Seed)
	cumulative := 0.0
	for j := 1; j <= 10; j++ {
		sub := src.SplitIndexed("eq4", j)
		xs := make([]float64, samples)
		zs := make([]float64, samples)
		for i := range xs {
			x := sub.Erlang(j, 1/lambda)
			xs[i] = x
			zs[i] = x + sub.Exponential(p.MeanDelay)
		}
		mi, err := infotheory.BinnedMI(xs, zs, bins)
		if err != nil {
			return nil, err
		}
		bound, err := infotheory.AnantharamVerduBound(j, mu, lambda)
		if err != nil {
			return nil, err
		}
		cumulative += bound
		t.AddRow(fmt.Sprintf("%d", j), mi, bound, cumulative)
	}
	return t, nil
}

// singleNodeSim drives one buffering node with Poisson(lambda) arrivals and
// exponential(meanDelay) holding times for the given horizon, sampling the
// occupancy at unit-rate Poisson inspection times (PASTA: Poisson arrivals
// see time averages).
func singleNodeSim(seed uint64, pol func(*sim.Scheduler) (buffer.Policy, error), lambda, meanDelay, horizon float64, maxOcc int) (occupancy []float64, stats *buffer.Stats, err error) {
	sched := sim.NewScheduler()
	b, err := pol(sched)
	if err != nil {
		return nil, nil, err
	}
	src := rng.New(seed)
	arrSrc := src.Split("arrivals")
	delaySrc := src.Split("delays")
	probeSrc := src.Split("probes")

	seq := uint32(0)
	var arrive func()
	arrive = func() {
		if sched.Now() >= horizon {
			return
		}
		b.Admit(packet.New(1, seq, sched.Now()), delaySrc.Exponential(meanDelay))
		seq++
		sched.After(arrSrc.ExponentialRate(lambda), arrive)
	}
	sched.After(arrSrc.ExponentialRate(lambda), arrive)

	counts := make([]float64, maxOcc+1)
	total := 0.0
	warmup := horizon * 0.05
	var probe func()
	probe = func() {
		if sched.Now() >= horizon {
			return
		}
		if sched.Now() > warmup {
			n := b.Len()
			if n > maxOcc {
				n = maxOcc
			}
			counts[n]++
			total++
		}
		sched.After(probeSrc.ExponentialRate(1), probe)
	}
	sched.After(probeSrc.ExponentialRate(1), probe)

	if err := sched.Run(); err != nil {
		return nil, nil, fmt.Errorf("experiment: single-node sim: %w", err)
	}
	if total > 0 {
		for i := range counts {
			counts[i] /= total
		}
	}
	return counts, b.Stats(), nil
}

// MMInf validates §4's queueing analysis: the stationary occupancy of an
// unlimited delaying buffer is Poisson(ρ), and with k slots it is the
// truncated Poisson of the M/M/k/k model.
func MMInf(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	lambda := 1 / p.Interarrivals[0] // 0.5 by default
	rho := lambda * p.MeanDelay      // 15 by default
	const horizon = 200000.0
	maxOcc := int(rho*2) + 10

	unlimited, _, err := singleNodeSim(p.Seed, func(s *sim.Scheduler) (buffer.Policy, error) {
		return buffer.NewUnlimited(s, func(*packet.Packet, bool) {})
	}, lambda, p.MeanDelay, horizon, maxOcc)
	if err != nil {
		return nil, err
	}
	finite, _, err := singleNodeSim(p.Seed+1, func(s *sim.Scheduler) (buffer.Policy, error) {
		return buffer.NewDropTail(s, func(*packet.Packet, bool) {}, p.Capacity)
	}, lambda, p.MeanDelay, horizon, maxOcc)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "§4: buffer-occupancy distribution vs M/M/∞ and M/M/k/k analysis",
		RowHeader: "occupancy n",
		Columns:   []string{"mminf-sim", "mminf-Poisson(ρ)", "mmkk-sim", "mmkk-analytic"},
		Notes: []string{
			fmt.Sprintf("λ=%g, 1/µ=%g → ρ=%g; k=%d; horizon=%g, PASTA probes, seed=%d",
				lambda, p.MeanDelay, rho, p.Capacity, horizon, p.Seed),
			"expected: sim columns track their analytic neighbours bin-by-bin",
		},
	}
	limit := maxOcc
	if limit > int(rho)*2 {
		limit = int(rho) * 2
	}
	for n := 0; n <= limit; n++ {
		poisson, err := queueing.PoissonPMF(rho, n)
		if err != nil {
			return nil, err
		}
		mmkkSim, mmkkTheory := math.NaN(), math.NaN()
		if n <= p.Capacity {
			mmkkSim = finite[n]
			mmkkTheory, err = queueing.MMkkOccupancyPMF(rho, p.Capacity, n)
			if err != nil {
				return nil, err
			}
		}
		t.AddRow(fmt.Sprintf("%d", n), unlimited[n], poisson, mmkkSim, mmkkTheory)
	}
	return t, nil
}

// Erlang validates §4's Erlang loss formula (eq. 5): the simulated drop rate
// of a k-slot drop-tail buffer matches E(ρ, k) across utilizations, and the
// preemption rate of the RCAD buffer tracks the same curve (every blocked
// arrival becomes a preemption instead of a drop).
func Erlang(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	rhos := []float64{1, 2, 5, 8, 10, 12, 15, 20, 30}
	const horizon = 150000.0

	type point struct{ drop, preempt, analytic float64 }
	points := make([]point, len(rhos))
	err = parallelFor(p.Workers, len(rhos), func(i int) error {
		rho := rhos[i]
		lambda := rho / p.MeanDelay
		_, dropStats, err := singleNodeSim(p.Seed+uint64(i), func(s *sim.Scheduler) (buffer.Policy, error) {
			return buffer.NewDropTail(s, func(*packet.Packet, bool) {}, p.Capacity)
		}, lambda, p.MeanDelay, horizon, 1)
		if err != nil {
			return err
		}
		_, preemptStats, err := singleNodeSim(p.Seed+uint64(i), func(s *sim.Scheduler) (buffer.Policy, error) {
			return buffer.NewPreemptive(s, func(*packet.Packet, bool) {}, p.Capacity, buffer.ShortestRemaining{}, rng.New(p.Seed+uint64(i)))
		}, lambda, p.MeanDelay, horizon, 1)
		if err != nil {
			return err
		}
		analytic, err := queueing.ErlangLoss(rho, p.Capacity)
		if err != nil {
			return err
		}
		points[i] = point{
			drop:     dropStats.DropRate(),
			preempt:  preemptStats.PreemptionRate(),
			analytic: analytic,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "Eq. (5): Erlang loss E(ρ,k) vs simulated drop and preemption rates",
		RowHeader: "ρ = λ/µ",
		Columns:   []string{"droptail-sim", "E(ρ,k)", "rcad-preempt-sim"},
		Notes: []string{
			fmt.Sprintf("k=%d, Poisson arrivals, exponential delays, horizon=%g, seed=%d", p.Capacity, horizon, p.Seed),
			"expected: droptail-sim ≈ E(ρ,k); rcad preemption rate tracks the same curve from above",
		},
	}
	for i, rho := range rhos {
		t.AddRow(formatSweepLabel(rho), points[i].drop, points[i].analytic, points[i].preempt)
	}
	return t, nil
}
