package experiment

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"tempriv/internal/report"
)

// testParams returns reduced-size parameters so the full suite stays fast
// while preserving every qualitative shape the tests assert.
func testParams() Params {
	p := Defaults()
	p.Packets = 400
	p.Interarrivals = []float64{2, 10, 20}
	p.Workers = 4
	return p
}

func mustRun(t *testing.T, id string, p Params) *report.Table {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(p)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatalf("%s: invalid table: %v", id, err)
	}
	return tab
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"fig2a", "fig2b", "fig3"} {
		if !seen[id] {
			t.Fatalf("figure experiment %q missing", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig2a" {
		t.Fatalf("ByID returned %q", e.ID)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if got, want := len(IDs()), len(All()); got != want {
		t.Fatalf("IDs() has %d entries, want %d", got, want)
	}
}

func TestParamsNormalization(t *testing.T) {
	p, err := (Params{}).normalized()
	if err != nil {
		t.Fatal(err)
	}
	d := Defaults()
	if p.Packets != d.Packets || p.MeanDelay != d.MeanDelay || p.Capacity != d.Capacity {
		t.Fatalf("normalized zero params = %+v", p)
	}
	if _, err := (Params{Packets: -1}).normalized(); err == nil {
		t.Fatal("negative packets accepted")
	}
	if _, err := (Params{Capacity: -2}).normalized(); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := (Params{Interarrivals: []float64{0}}).normalized(); err == nil {
		t.Fatal("zero interarrival accepted")
	}
}

func TestParallelFor(t *testing.T) {
	var total atomic.Int64
	if err := parallelFor(4, 100, func(i int) error {
		total.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", total.Load())
	}
	wantErr := errors.New("boom")
	err := parallelFor(3, 10, func(i int) error {
		if i == 7 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("error not propagated: %v", err)
	}
	// Degenerate worker counts still complete.
	if err := parallelFor(0, 3, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := parallelFor(100, 1, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func columnIndex(t *testing.T, tab *report.Table, name string) int {
	t.Helper()
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, tab.Columns)
	return -1
}

func TestFig2aShape(t *testing.T) {
	p := testParams()
	tab := mustRun(t, "fig2a", p)
	if len(tab.Rows) != len(p.Interarrivals) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(p.Interarrivals))
	}
	noDelay := columnIndex(t, tab, "NoDelay")
	unlimited := columnIndex(t, tab, "Delay&UnlimitedBuffers")
	rcad := columnIndex(t, tab, "Delay&LimitedBuffers(RCAD)")

	for _, r := range tab.Rows {
		// Case 1: the adversary inverts the constant transmission delay
		// exactly.
		if r.Values[noDelay] > 1e-9 {
			t.Fatalf("NoDelay MSE at 1/λ=%s is %v, want ≈ 0", r.Label, r.Values[noDelay])
		}
		// Case 2: unbiased adversary leaves only delay variance ≈ h/µ².
		if v := r.Values[unlimited]; v < 8000 || v > 22000 {
			t.Fatalf("Unlimited MSE at 1/λ=%s is %v, want ≈ 1.35e4", r.Label, v)
		}
	}
	// Case 3 dominates at peak load and decays toward case 2.
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if first.Values[rcad] < 3*first.Values[unlimited] {
		t.Fatalf("RCAD MSE at 1/λ=2 (%v) not well above unlimited (%v)",
			first.Values[rcad], first.Values[unlimited])
	}
	if last.Values[rcad] > 1.6*last.Values[unlimited] {
		t.Fatalf("RCAD MSE at 1/λ=20 (%v) did not converge toward unlimited (%v)",
			last.Values[rcad], last.Values[unlimited])
	}
	if first.Values[rcad] < 2*last.Values[rcad] {
		t.Fatalf("RCAD MSE not decaying with 1/λ: %v → %v", first.Values[rcad], last.Values[rcad])
	}
}

func TestFig2bShape(t *testing.T) {
	p := testParams()
	tab := mustRun(t, "fig2b", p)
	noDelay := columnIndex(t, tab, "NoDelay")
	unlimited := columnIndex(t, tab, "Delay&UnlimitedBuffers")
	rcad := columnIndex(t, tab, "Delay&LimitedBuffers(RCAD)")

	for _, r := range tab.Rows {
		if math.Abs(r.Values[noDelay]-15) > 1e-9 {
			t.Fatalf("NoDelay latency at 1/λ=%s = %v, want exactly 15 (h·τ)", r.Label, r.Values[noDelay])
		}
		if v := r.Values[unlimited]; math.Abs(v-465) > 0.1*465 {
			t.Fatalf("Unlimited latency at 1/λ=%s = %v, want ≈ 465", r.Label, v)
		}
		if r.Values[rcad] < r.Values[noDelay] || r.Values[rcad] > r.Values[unlimited]*1.05 {
			t.Fatalf("RCAD latency at 1/λ=%s = %v not between NoDelay and Unlimited", r.Label, r.Values[rcad])
		}
	}
	// Paper: ≈2.5× latency reduction at 1/λ=2; our merge topology gives ≈2×.
	first := tab.Rows[0]
	factor := first.Values[unlimited] / first.Values[rcad]
	if factor < 1.7 {
		t.Fatalf("latency reduction factor at 1/λ=2 = %v, want ≥ 1.7 (paper: 2.5)", factor)
	}
	// Convergence at slow rates.
	last := tab.Rows[len(tab.Rows)-1]
	if last.Values[unlimited]/last.Values[rcad] > 1.15 {
		t.Fatalf("RCAD latency did not converge to unlimited at 1/λ=20: %v vs %v",
			last.Values[rcad], last.Values[unlimited])
	}
}

func TestFig3Shape(t *testing.T) {
	p := testParams()
	tab := mustRun(t, "fig3", p)
	base := columnIndex(t, tab, "BaselineAdversary")
	adaptive := columnIndex(t, tab, "AdaptiveAdversary")
	pathAware := columnIndex(t, tab, "PathAwareAdversary")
	preempt := columnIndex(t, tab, "preemption-rate")

	first := tab.Rows[0]
	// §5.4: the adaptive adversary significantly reduces (but does not
	// eliminate) the error at high traffic rates.
	if first.Values[adaptive] >= 0.8*first.Values[base] {
		t.Fatalf("adaptive MSE %v not well below baseline %v at 1/λ=2",
			first.Values[adaptive], first.Values[base])
	}
	if first.Values[adaptive] <= 0 {
		t.Fatal("adaptive adversary eliminated the error entirely")
	}
	// The path-aware extension is at least as strong as the flow-level
	// adaptive adversary under peak load.
	if first.Values[pathAware] > first.Values[adaptive]*1.05 {
		t.Fatalf("path-aware MSE %v above adaptive %v at 1/λ=2",
			first.Values[pathAware], first.Values[adaptive])
	}
	// Convergence at slow rates: all adversaries agree within noise.
	last := tab.Rows[len(tab.Rows)-1]
	if math.Abs(last.Values[adaptive]-last.Values[base]) > 0.25*last.Values[base] {
		t.Fatalf("adaptive (%v) and baseline (%v) did not converge at 1/λ=20",
			last.Values[adaptive], last.Values[base])
	}
	// Preemption rate decreases with 1/λ.
	if first.Values[preempt] <= last.Values[preempt] {
		t.Fatalf("preemption rate not decreasing: %v → %v", first.Values[preempt], last.Values[preempt])
	}
}

func TestEq2EPIShape(t *testing.T) {
	tab := mustRun(t, "eq2-epi", testParams())
	gaussExact := columnIndex(t, tab, "gauss-exact-MI")
	gaussBound := columnIndex(t, tab, "gauss-EPI-bound")
	expMI := columnIndex(t, tab, "exp-empirical-MI")
	expBound := columnIndex(t, tab, "exp-EPI-bound")
	for _, r := range tab.Rows {
		if math.Abs(r.Values[gaussExact]-r.Values[gaussBound]) > 1e-9 {
			t.Fatalf("EPI not tight for Gaussians at ratio %s: %v vs %v",
				r.Label, r.Values[gaussExact], r.Values[gaussBound])
		}
		if r.Values[expBound] > r.Values[expMI]+0.02 {
			t.Fatalf("EPI bound %v above empirical MI %v at ratio %s",
				r.Values[expBound], r.Values[expMI], r.Label)
		}
	}
}

func TestEq4BoundShape(t *testing.T) {
	tab := mustRun(t, "eq4-bound", testParams())
	mi := columnIndex(t, tab, "empirical-MI")
	bound := columnIndex(t, tab, "AV-bound")
	prevBound := 0.0
	for _, r := range tab.Rows {
		if r.Values[mi] > r.Values[bound]*1.05 {
			t.Fatalf("empirical MI %v exceeds AV bound %v at j=%s",
				r.Values[mi], r.Values[bound], r.Label)
		}
		if r.Values[bound] < prevBound {
			t.Fatalf("AV bound not increasing at j=%s", r.Label)
		}
		prevBound = r.Values[bound]
	}
}

func TestMMInfShape(t *testing.T) {
	tab := mustRun(t, "mm-inf", testParams())
	sim := columnIndex(t, tab, "mminf-sim")
	theory := columnIndex(t, tab, "mminf-Poisson(ρ)")
	kkSim := columnIndex(t, tab, "mmkk-sim")
	kkTheory := columnIndex(t, tab, "mmkk-analytic")
	tv, tvKK := 0.0, 0.0
	for _, r := range tab.Rows {
		tv += math.Abs(r.Values[sim] - r.Values[theory])
		if !math.IsNaN(r.Values[kkSim]) {
			tvKK += math.Abs(r.Values[kkSim] - r.Values[kkTheory])
		}
	}
	if tv/2 > 0.03 {
		t.Fatalf("M/M/∞ occupancy TV distance = %v, want < 0.03", tv/2)
	}
	if tvKK/2 > 0.03 {
		t.Fatalf("M/M/k/k occupancy TV distance = %v, want < 0.03", tvKK/2)
	}
}

func TestErlangShape(t *testing.T) {
	tab := mustRun(t, "erlang", testParams())
	sim := columnIndex(t, tab, "droptail-sim")
	theory := columnIndex(t, tab, "E(ρ,k)")
	preempt := columnIndex(t, tab, "rcad-preempt-sim")
	for _, r := range tab.Rows {
		if math.Abs(r.Values[sim]-r.Values[theory]) > 0.03 {
			t.Fatalf("drop rate %v vs Erlang %v at ρ=%s", r.Values[sim], r.Values[theory], r.Label)
		}
		// Preemption admits the newcomer and keeps the buffer saturated, so
		// its rate sits at or above the blocking probability.
		if r.Values[preempt]+0.02 < r.Values[theory] {
			t.Fatalf("preemption rate %v below Erlang loss %v at ρ=%s",
				r.Values[preempt], r.Values[theory], r.Label)
		}
	}
}

func TestAblVictimShape(t *testing.T) {
	tab := mustRun(t, "abl-victim", testParams())
	if len(tab.Columns) != 8 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	// Sanity: every MSE is positive under load.
	for _, r := range tab.Rows[:1] {
		for i, c := range tab.Columns {
			if strings.HasPrefix(c, "mse:") && r.Values[i] <= 0 {
				t.Fatalf("column %s non-positive at peak load", c)
			}
		}
	}
}

func TestAblDistRanking(t *testing.T) {
	tab := mustRun(t, "abl-dist", testParams())
	mse := columnIndex(t, tab, "adversary-MSE")
	byName := map[string]float64{}
	for _, r := range tab.Rows {
		byName[r.Label] = r.Values[mse]
	}
	// §3.2 max-entropy argument: exponential extracts the most MSE at equal
	// mean; degenerate distributions extract none.
	if !(byName["exponential"] > byName["pareto"] &&
		byName["pareto"] > byName["uniform"] &&
		byName["uniform"] > byName["constant"]) {
		t.Fatalf("MSE ranking wrong: %v", byName)
	}
	if byName["constant"] > 1e-9 || byName["none"] > 1e-9 {
		t.Fatalf("deterministic delays leaked MSE: %v", byName)
	}
}

func TestAblBufferTradeoff(t *testing.T) {
	tab := mustRun(t, "abl-buffer", testParams())
	mse := columnIndex(t, tab, "adversary-MSE")
	preempt := columnIndex(t, tab, "preemption-rate")
	lat := columnIndex(t, tab, "mean-latency")
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Values[preempt] > tab.Rows[i-1].Values[preempt]+0.02 {
			t.Fatalf("preemption rate not decreasing in k at row %d", i)
		}
		if tab.Rows[i].Values[lat] < tab.Rows[i-1].Values[lat]-5 {
			t.Fatalf("latency not increasing in k at row %d", i)
		}
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if first.Values[mse] < 3*last.Values[mse] {
		t.Fatalf("small-k MSE %v not well above large-k MSE %v", first.Values[mse], last.Values[mse])
	}
}

func TestAblMuConflict(t *testing.T) {
	tab := mustRun(t, "abl-mu", testParams())
	mse := columnIndex(t, tab, "adversary-MSE")
	occ := columnIndex(t, tab, "trunk-avg-occupancy")
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Values[mse] <= tab.Rows[i-1].Values[mse] {
			t.Fatalf("MSE not increasing with 1/µ at row %d", i)
		}
		if tab.Rows[i].Values[occ] <= tab.Rows[i-1].Values[occ] {
			t.Fatalf("occupancy not increasing with 1/µ at row %d", i)
		}
	}
}

func TestAblDecompTradeoff(t *testing.T) {
	tab := mustRun(t, "abl-decomp", testParams())
	mse := columnIndex(t, tab, "adversary-MSE")
	occ := columnIndex(t, tab, "near-sink-avg-occupancy")
	rows := map[string][]float64{}
	for _, r := range tab.Rows {
		rows[r.Label] = r.Values
	}
	uniform, light, heavy := rows["uniform"], rows["sink-light"], rows["sink-heavy"]
	if uniform == nil || light == nil || heavy == nil {
		t.Fatalf("schemes missing: %v", tab.Rows)
	}
	// §3.3: pushing delay away from the sink cuts near-sink occupancy while
	// raising MSE (Σmᵢ² grows when the split is uneven).
	if light[occ] >= uniform[occ] {
		t.Fatalf("sink-light occupancy %v not below uniform %v", light[occ], uniform[occ])
	}
	if light[mse] <= uniform[mse] {
		t.Fatalf("sink-light MSE %v not above uniform %v", light[mse], uniform[mse])
	}
	if heavy[occ] <= uniform[occ] {
		t.Fatalf("sink-heavy occupancy %v not above uniform %v", heavy[occ], uniform[occ])
	}
}

func TestOccupancyShape(t *testing.T) {
	p := testParams()
	tab := mustRun(t, "occupancy", p)
	if len(tab.Rows) != 48 {
		t.Fatalf("rows = %d, want 48 time points", len(tab.Rows))
	}
	wantCols := 8 + 3 // trunk nodes + buffered-total, in-flight, delivered
	if len(tab.Columns) != wantCols {
		t.Fatalf("columns = %v, want %d", tab.Columns, wantCols)
	}
	buffered := columnIndex(t, tab, "buffered-total")
	delivered := columnIndex(t, tab, "delivered")

	// At 1/λ=2 the trunk saturates: some sample should show a full k-slot
	// buffer, and none may exceed capacity.
	sawFull := false
	prevDelivered := -1.0
	for _, r := range tab.Rows {
		trunkSum := 0.0
		for c := 0; c < 8; c++ {
			v := r.Values[c]
			if v < 0 || v > float64(p.Capacity) {
				t.Fatalf("trunk occupancy %v at t=%s outside [0, k=%d]", v, r.Label, p.Capacity)
			}
			if v == float64(p.Capacity) {
				sawFull = true
			}
			trunkSum += v
		}
		if trunkSum > r.Values[buffered] {
			t.Fatalf("trunk occupancy %v exceeds network total %v at t=%s", trunkSum, r.Values[buffered], r.Label)
		}
		if r.Values[delivered] < prevDelivered {
			t.Fatalf("cumulative deliveries decreased at t=%s", r.Label)
		}
		prevDelivered = r.Values[delivered]
	}
	if !sawFull {
		t.Fatal("no sample shows a saturated trunk buffer at peak load")
	}
	// Replication must work: the row labels (sample times) are seed-independent.
	if _, err := Replicate(Experiment{ID: "occupancy", Title: "t", Paper: "p", Run: Occupancy}, p, 2); err != nil {
		t.Fatalf("occupancy not replicable: %v", err)
	}
}

func TestExperimentDeterminism(t *testing.T) {
	p := testParams()
	p.Interarrivals = []float64{2}
	p.Packets = 200
	a := mustRun(t, "fig2a", p)
	b := mustRun(t, "fig2a", p)
	for i := range a.Rows {
		for j := range a.Rows[i].Values {
			if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
				t.Fatalf("non-deterministic result at row %d col %d: %v vs %v",
					i, j, a.Rows[i].Values[j], b.Rows[i].Values[j])
			}
		}
	}
}

func TestAblMixShape(t *testing.T) {
	tab := mustRun(t, "abl-mix", testParams())
	genie := columnIndex(t, tab, "genie-MSE(floor)")
	lat := columnIndex(t, tab, "mean-latency")
	peak := columnIndex(t, tab, "peak-occupancy")
	rows := map[string][]float64{}
	for _, r := range tab.Rows {
		rows[r.Label] = r.Values
	}
	noDelay, rcad, sg := rows["no-delay"], rows["rcad(k=10)"], rows["sg-mix"]
	threshold, timed := rows["threshold-mix(10)"], rows["timed-mix(30)"]
	if noDelay == nil || rcad == nil || sg == nil || threshold == nil || timed == nil {
		t.Fatalf("schemes missing: %v", tab.Rows)
	}
	if noDelay[genie] != 0 {
		t.Fatalf("no-delay genie MSE = %v, want 0", noDelay[genie])
	}
	// SG-mix (per-message exponential) buys the most variance; RCAD keeps
	// most of it with a bounded buffer and lower latency.
	if rcad[genie] < 0.5*sg[genie] {
		t.Fatalf("rcad genie MSE %v below half of sg-mix %v", rcad[genie], sg[genie])
	}
	if rcad[lat] >= sg[lat] {
		t.Fatalf("rcad latency %v not below sg-mix %v", rcad[lat], sg[lat])
	}
	if rcad[peak] > 10 {
		t.Fatalf("rcad peak occupancy %v exceeds its 10-slot buffer", rcad[peak])
	}
	if sg[peak] <= 10 {
		t.Fatalf("sg-mix peak occupancy %v suspiciously small (needs unbounded buffers)", sg[peak])
	}
	// Batch mixes collapse temporal privacy on a multi-hop network (§6).
	for name, r := range map[string][]float64{"threshold": threshold, "timed": timed} {
		if r[genie] > 0.25*rcad[genie] {
			t.Fatalf("%s-mix genie MSE %v not well below rcad %v", name, r[genie], rcad[genie])
		}
	}
}

func TestAblLatticeShape(t *testing.T) {
	tab := mustRun(t, "abl-lattice", testParams())
	raw := columnIndex(t, tab, "raw-MSE")
	lattice := columnIndex(t, tab, "lattice-MSE")
	recovered := columnIndex(t, tab, "exactly-recovered")
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	// Tiny delays: the lattice recovers nearly everything exactly.
	if first.Values[recovered] < 0.95 {
		t.Fatalf("recovery at 1/µ=%s = %v, want ≈ 1", first.Label, first.Values[recovered])
	}
	if first.Values[lattice] > 0.2*first.Values[raw]+1e-9 {
		t.Fatalf("lattice MSE %v not well below raw %v at tiny delay", first.Values[lattice], first.Values[raw])
	}
	// Paper-scale delays: snapping is useless.
	if last.Values[recovered] > 0.15 {
		t.Fatalf("recovery at 1/µ=%s = %v, want ≈ 0", last.Label, last.Values[recovered])
	}
	if last.Values[lattice] < 0.8*last.Values[raw] {
		t.Fatalf("lattice MSE %v below raw %v at large delay", last.Values[lattice], last.Values[raw])
	}
	// Recovery fraction decreases monotonically (within tolerance).
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Values[recovered] > tab.Rows[i-1].Values[recovered]+0.05 {
			t.Fatalf("recovery fraction not decreasing at row %d", i)
		}
	}
}

func TestSortReorderShape(t *testing.T) {
	tab := mustRun(t, "sort-reorder", testParams())
	sim := columnIndex(t, tab, "swap-prob-sim")
	analytic := columnIndex(t, tab, "swap-prob ½λ/(λ+µ)")
	disp := columnIndex(t, tab, "mean-rank-displacement")
	for i, r := range tab.Rows {
		if math.Abs(r.Values[sim]-r.Values[analytic]) > 0.005 {
			t.Fatalf("row %s: empirical swap %v vs closed form %v", r.Label, r.Values[sim], r.Values[analytic])
		}
		if i > 0 {
			if r.Values[sim] <= tab.Rows[i-1].Values[sim] {
				t.Fatalf("swap probability not increasing with 1/µ at row %d", i)
			}
			if r.Values[disp] <= tab.Rows[i-1].Values[disp] {
				t.Fatalf("rank displacement not increasing with 1/µ at row %d", i)
			}
		}
	}
	// Swap probability approaches the ½ ceiling at long delays.
	last := tab.Rows[len(tab.Rows)-1]
	if last.Values[sim] < 0.45 {
		t.Fatalf("swap probability at longest delay = %v, want → 0.5", last.Values[sim])
	}
}

func TestAblLinkLossShape(t *testing.T) {
	tab := mustRun(t, "abl-linkloss", testParams())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 loss points", len(tab.Rows))
	}
	ratio := columnIndex(t, tab, "delivery-ratio")
	retx := columnIndex(t, tab, "retx/packet")
	mse := columnIndex(t, tab, "adversary-MSE")

	// p = 0: perfect delivery, zero ARQ work.
	if r := tab.Rows[0]; r.Values[ratio] != 1 || r.Values[retx] != 0 {
		t.Fatalf("lossless row = %v", r.Values)
	}
	// Monotone sanity across the sweep: retransmissions grow with p, and
	// delivery never improves as the channel worsens.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Values[retx] <= tab.Rows[i-1].Values[retx] {
			t.Fatalf("retx/packet not increasing at row %d: %v vs %v",
				i, tab.Rows[i].Values[retx], tab.Rows[i-1].Values[retx])
		}
		if tab.Rows[i].Values[ratio] > tab.Rows[i-1].Values[ratio]+1e-9 {
			t.Fatalf("delivery ratio rose with loss at row %d", i)
		}
	}
	// ARQ with 3 retries absorbs 20% loss almost entirely.
	if last := tab.Rows[len(tab.Rows)-1]; last.Values[ratio] < 0.95 {
		t.Fatalf("delivery ratio at p=0.2 = %v, want ≥ 0.95", last.Values[ratio])
	}
	// Privacy must not lean on a reliable channel: MSE stays positive and
	// within 3× of the lossless point across the sweep.
	base := tab.Rows[0].Values[mse]
	for _, r := range tab.Rows {
		if r.Values[mse] <= 0 || r.Values[mse] > 3*base || r.Values[mse] < base/3 {
			t.Fatalf("MSE %v at p=%s far from lossless %v", r.Values[mse], r.Label, base)
		}
	}
}
