package experiment

import (
	"fmt"
	"math"

	"tempriv/internal/buffer"
	"tempriv/internal/delay"
	"tempriv/internal/network"
	"tempriv/internal/packet"
	"tempriv/internal/report"
	"tempriv/internal/topology"
	"tempriv/internal/traffic"
)

// AblVictim compares RCAD victim-selection rules. The paper picks the packet
// with the shortest remaining delay so "the resulting delay times for that
// node are the closest to the original distribution" (§5); the ablation
// quantifies what the alternatives cost.
func AblVictim(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	selectors := []buffer.VictimSelector{
		buffer.ShortestRemaining{},
		buffer.LongestRemaining{},
		buffer.Oldest{},
		buffer.Random{},
	}
	sweep := []float64{2, 5, 10, 20}

	type cell struct{ mse, lat float64 }
	grid := make([][]cell, len(sweep))
	for i := range grid {
		grid[i] = make([]cell, len(selectors))
	}
	err = parallelFor(p.Workers, len(sweep)*len(selectors), func(idx int) error {
		i, j := idx/len(selectors), idx%len(selectors)
		ia := sweep[i]
		topo, sources, err := topology.Figure1()
		if err != nil {
			return err
		}
		proc, err := traffic.NewPeriodic(ia)
		if err != nil {
			return err
		}
		dist, err := delay.NewExponential(p.MeanDelay)
		if err != nil {
			return err
		}
		srcs := make([]network.Source, len(sources))
		for k, s := range sources {
			srcs[k] = network.Source{Node: s, Process: proc, Count: p.Packets}
		}
		res, err := network.RunCached(p.Engines, network.Config{
			Topology:          topo,
			Sources:           srcs,
			Policy:            network.PolicyRCAD,
			Delay:             dist,
			Capacity:          p.Capacity,
			Victim:            selectors[j],
			TransmissionDelay: p.Tau,
			Seed:              p.Seed,
		})
		if err != nil {
			return err
		}
		mse, err := scoreFlow(p, res, sources[0], p.MeanDelay)
		if err != nil {
			return err
		}
		grid[i][j] = cell{mse: mse, lat: res.Flows[sources[0]].Latency.Mean}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "Ablation: RCAD victim-selection rule (flow S1)",
		RowHeader: "1/λ",
		Columns:   []string{},
		Notes: append(figureNotes(p),
			"mse:* columns are baseline-adversary MSE; lat:* columns are mean delivery latency",
			"paper's rule is shortest-remaining: realised delays stay closest to the intended distribution"),
	}
	for _, s := range selectors {
		t.Columns = append(t.Columns, "mse:"+s.Name())
	}
	for _, s := range selectors {
		t.Columns = append(t.Columns, "lat:"+s.Name())
	}
	for i, ia := range sweep {
		values := make([]float64, 0, 2*len(selectors))
		for j := range selectors {
			values = append(values, grid[i][j].mse)
		}
		for j := range selectors {
			values = append(values, grid[i][j].lat)
		}
		t.AddRow(formatSweepLabel(ia), values...)
	}
	return t, nil
}

// AblDist compares delay distributions at equal mean (§3.2's max-entropy
// argument): the exponential should extract the most adversary error per
// unit of added latency.
func AblDist(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	names := []string{"none", "constant", "uniform", "pareto", "exponential"}
	const ia = 10.0

	type row struct{ entropy, mse, lat float64 }
	rows := make([]row, len(names))
	err = parallelFor(p.Workers, len(names), func(i int) error {
		name := names[i]
		dist, err := delay.ByName(name, p.MeanDelay)
		if err != nil {
			return err
		}
		entropy := math.NaN()
		if h, ok := dist.Entropy(); ok {
			entropy = h
		}

		topo, sources, err := topology.Figure1()
		if err != nil {
			return err
		}
		proc, err := traffic.NewPeriodic(ia)
		if err != nil {
			return err
		}
		policy := network.PolicyUnlimited
		var cfgDist delay.Distribution = dist
		if name == "none" {
			policy = network.PolicyForward
			cfgDist = nil
		}
		srcs := make([]network.Source, len(sources))
		for k, s := range sources {
			srcs[k] = network.Source{Node: s, Process: proc, Count: p.Packets}
		}
		res, err := network.RunCached(p.Engines, network.Config{
			Topology:          topo,
			Sources:           srcs,
			Policy:            policy,
			Delay:             cfgDist,
			TransmissionDelay: p.Tau,
			Seed:              p.Seed,
		})
		if err != nil {
			return err
		}
		mse, err := scoreFlow(p, res, sources[0], dist.Mean())
		if err != nil {
			return err
		}
		rows[i] = row{entropy: entropy, mse: mse, lat: res.Flows[sources[0]].Latency.Mean}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "Ablation: delay distribution at equal mean (unlimited buffers, flow S1)",
		RowHeader: "distribution",
		Columns:   []string{"per-hop-entropy(nats)", "adversary-MSE", "mean-latency"},
		Notes: []string{
			fmt.Sprintf("all distributions share mean %g; 1/λ=%g; adversary knows each distribution's mean", p.MeanDelay, ia),
			"expected: MSE ranks exponential > pareto > uniform > constant ≈ none (max-entropy argument, §3.2)",
			"latency column is ≈ equal across delaying rows: privacy is bought per unit latency, not with more latency",
		},
	}
	for i, name := range names {
		t.AddRow(name, rows[i].entropy, rows[i].mse, rows[i].lat)
	}
	return t, nil
}

// AblBuffer sweeps the buffer size k at the paper's highest load (1/λ = 2),
// exposing the §4/§5 tradeoff: more slots mean fewer preemptions and more
// privacy, at the cost of memory and latency.
func AblBuffer(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	capacities := []int{2, 5, 10, 20, 50, 100}
	const ia = 2.0

	type row struct{ mse, lat, preempt, maxTrunkOcc float64 }
	rows := make([]row, len(capacities))
	err = parallelFor(p.Workers, len(capacities), func(i int) error {
		q := p
		q.Capacity = capacities[i]
		res, sources, err := figure1Run(q, network.PolicyRCAD, ia)
		if err != nil {
			return err
		}
		mse, err := scoreFlow(q, res, sources[0], q.MeanDelay)
		if err != nil {
			return err
		}
		var preempts, arrivals uint64
		maxOcc := 0.0
		for _, id := range sortedNodeIDs(res.Nodes) {
			ns := res.Nodes[id]
			preempts += ns.Preemptions
			arrivals += ns.Arrivals
			if ns.MaxOccupancy > maxOcc {
				maxOcc = ns.MaxOccupancy
			}
		}
		pr := 0.0
		if arrivals > 0 {
			pr = float64(preempts) / float64(arrivals)
		}
		rows[i] = row{mse: mse, lat: res.Flows[sources[0]].Latency.Mean, preempt: pr, maxTrunkOcc: maxOcc}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "Ablation: buffer size k under peak load (1/λ = 2, RCAD, flow S1)",
		RowHeader: "k",
		Columns:   []string{"adversary-MSE", "mean-latency", "preemption-rate", "peak-occupancy"},
		Notes: append(figureNotes(p),
			"expected: growing k lowers the preemption rate toward 0 and pushes latency toward the unlimited case;",
			"MSE is highest at small k (preemptions defeat the adversary's delay model) — the privacy/buffer conflict"),
	}
	for i, k := range capacities {
		t.AddRow(fmt.Sprintf("%d", k), rows[i].mse, rows[i].lat, rows[i].preempt, rows[i].maxTrunkOcc)
	}
	return t, nil
}

// AblMu sweeps the mean per-hop delay 1/µ with unlimited buffers, exhibiting
// the central conflict of §3.2/§4: privacy (MSE) and buffer occupancy both
// grow with 1/µ.
func AblMu(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	means := []float64{5, 10, 20, 30, 60, 120}
	const ia = 10.0
	lambdaTot := 4.0 / ia // four flows share the trunk

	type row struct{ mse, lat, occ, rho float64 }
	rows := make([]row, len(means))
	err = parallelFor(p.Workers, len(means), func(i int) error {
		q := p
		q.MeanDelay = means[i]
		res, sources, err := figure1Run(q, network.PolicyUnlimited, ia)
		if err != nil {
			return err
		}
		mse, err := scoreFlow(q, res, sources[0], q.MeanDelay)
		if err != nil {
			return err
		}
		// Node 1 is the trunk hop adjacent to the sink (MergeTree
		// construction): the most loaded buffer in the network.
		trunk, ok := res.Nodes[packet.NodeID(1)]
		if !ok {
			return fmt.Errorf("experiment: trunk node stats missing")
		}
		rows[i] = row{
			mse: mse,
			lat: res.Flows[sources[0]].Latency.Mean,
			occ: trunk.AvgOccupancy,
			rho: lambdaTot * means[i],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "Ablation: privacy vs buffer occupancy as the mean delay 1/µ grows (unlimited buffers)",
		RowHeader: "1/µ",
		Columns:   []string{"adversary-MSE", "mean-latency", "trunk-avg-occupancy", "theory ρ=λtot/µ"},
		Notes: []string{
			fmt.Sprintf("Figure-1 topology, 1/λ=%g per source (λtot=%g at the trunk), flow S1, seed=%d", ia, lambdaTot, p.Seed),
			"expected: MSE grows ≈ h/µ² while trunk occupancy grows ≈ λtot/µ — the conflicting objectives of §4",
		},
	}
	for i, m := range means {
		t.AddRow(formatSweepLabel(m), rows[i].mse, rows[i].lat, rows[i].occ, rows[i].rho)
	}
	return t, nil
}

// AblDecomp compares ways of decomposing the per-path delay budget across
// hops (§3.3): a uniform split, a sink-light split (more delay far from the
// sink), and a sink-heavy split. Total mean delay is held constant.
func AblDecomp(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	const hops = 15
	const ia = 10.0
	budget := p.MeanDelay * hops // same total mean delay in every scheme

	// weightFor returns each node's share weight; node IDs on the line are
	// 1 (adjacent to sink) … hops (the source).
	schemes := []struct {
		name   string
		weight func(id int) float64
	}{
		{name: "uniform", weight: func(int) float64 { return 1 }},
		{name: "sink-light", weight: func(id int) float64 { return float64(id) }},
		{name: "sink-heavy", weight: func(id int) float64 { return float64(hops + 1 - id) }},
	}

	type row struct{ mse, lat, nearSinkOcc, predictedMSE float64 }
	rows := make([]row, len(schemes))
	err = parallelFor(p.Workers, len(schemes), func(i int) error {
		sc := schemes[i]
		total := 0.0
		for id := 1; id <= hops; id++ {
			total += sc.weight(id)
		}
		perNode := make(map[packet.NodeID]delay.Distribution, hops)
		predicted := 0.0
		for id := 1; id <= hops; id++ {
			mean := budget * sc.weight(id) / total
			d, err := delay.NewExponential(mean)
			if err != nil {
				return err
			}
			perNode[packet.NodeID(id)] = d
			predicted += mean * mean // Var of exponential = mean²
		}

		topo, err := topology.Line(hops)
		if err != nil {
			return err
		}
		proc, err := traffic.NewPeriodic(ia)
		if err != nil {
			return err
		}
		base, err := delay.NewExponential(p.MeanDelay)
		if err != nil {
			return err
		}
		res, err := network.RunCached(p.Engines, network.Config{
			Topology:          topo,
			Sources:           []network.Source{{Node: packet.NodeID(hops), Process: proc, Count: p.Packets}},
			Policy:            network.PolicyUnlimited,
			Delay:             base,
			PerNodeDelay:      perNode,
			TransmissionDelay: p.Tau,
			Seed:              p.Seed,
		})
		if err != nil {
			return err
		}
		mse, err := scoreFlow(p, res, packet.NodeID(hops), budget/hops)
		if err != nil {
			return err
		}
		near, ok := res.Nodes[packet.NodeID(1)]
		if !ok {
			return fmt.Errorf("experiment: near-sink node stats missing")
		}
		rows[i] = row{
			mse:          mse,
			lat:          res.Flows[packet.NodeID(hops)].Latency.Mean,
			nearSinkOcc:  near.AvgOccupancy,
			predictedMSE: predicted,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "§3.3: decomposing the delay budget across the routing path (line, 15 hops)",
		RowHeader: "scheme",
		Columns:   []string{"adversary-MSE", "mean-latency", "near-sink-avg-occupancy", "predicted MSE Σmᵢ²"},
		Notes: []string{
			fmt.Sprintf("total mean delay fixed at %g (= 15 × %g); 1/λ=%g; unlimited buffers; seed=%d", budget, p.MeanDelay, ia, p.Seed),
			"sink-light pushes delay away from the sink: lower near-sink occupancy AND higher MSE at equal latency —",
			"the §3.3 observation that decomposition can favour nodes far from the sink",
		},
	}
	for i, sc := range schemes {
		t.AddRow(sc.name, rows[i].mse, rows[i].lat, rows[i].nearSinkOcc, rows[i].predictedMSE)
	}
	return t, nil
}
