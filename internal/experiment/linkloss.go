package experiment

import (
	"fmt"

	"tempriv/internal/delay"
	"tempriv/internal/network"
	"tempriv/internal/report"
	"tempriv/internal/topology"
	"tempriv/internal/traffic"
)

// AblLinkLoss sweeps the per-link frame-loss probability p with link-layer
// ARQ enabled, on the Figure-1 topology under RCAD. The robustness question:
// how much delivery does an unreliable channel cost, how much work does ARQ
// spend recovering it, and does retransmission jitter change what the
// adversary learns about creation times?
func AblLinkLoss(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	sweep := []float64{0, 0.05, 0.1, 0.2}
	const ia = 10.0

	type row struct{ ratio, retxPerPkt, dropPerPkt, mse, lat float64 }
	rows := make([]row, len(sweep))
	err = parallelFor(p.Workers, len(sweep), func(i int) error {
		topo, sources, err := topology.Figure1()
		if err != nil {
			return err
		}
		proc, err := traffic.NewPeriodic(ia)
		if err != nil {
			return err
		}
		dist, err := delay.NewExponential(p.MeanDelay)
		if err != nil {
			return err
		}
		srcs := make([]network.Source, len(sources))
		for k, s := range sources {
			srcs[k] = network.Source{Node: s, Process: proc, Count: p.Packets}
		}
		res, err := network.RunCached(p.Engines, network.Config{
			Topology:          topo,
			Sources:           srcs,
			Policy:            network.PolicyRCAD,
			Delay:             dist,
			Capacity:          p.Capacity,
			TransmissionDelay: p.Tau,
			Seed:              p.Seed,
			Channel:           &network.ChannelConfig{LossP: sweep[i]},
			ARQ:               network.DefaultARQ(),
		})
		if err != nil {
			return err
		}
		mse, err := scoreFlow(p, res, sources[0], p.MeanDelay)
		if err != nil {
			return err
		}
		var created uint64
		for _, f := range res.Flows {
			created += f.Created
		}
		rows[i] = row{
			ratio:      res.DeliveryRatio(),
			retxPerPkt: float64(res.Retransmissions) / float64(created),
			dropPerPkt: float64(res.LinkDrops) / float64(created),
			mse:        mse,
			lat:        res.Flows[sources[0]].Latency.Mean,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "Robustness: link loss vs delivery, ARQ work, and adversary MSE (RCAD, flow S1)",
		RowHeader: "loss p",
		Columns:   []string{"delivery-ratio", "retx/packet", "link-drops/packet", "adversary-MSE", "mean-latency"},
		Notes: append(figureNotes(p),
			fmt.Sprintf("Bernoulli per-link loss, ARQ: %d retries, timeout 3τ, backoff ×2; 1/λ=%g", network.DefaultARQ().MaxRetries, ia),
			"expected: delivery ratio ≈ 1 for p ≤ 0.1 (ARQ absorbs the loss) and MSE stays ≈ flat —",
			"retransmission jitter is per-hop and small next to the RCAD delay, so privacy does not lean on a reliable channel"),
	}
	for i, pl := range sweep {
		t.AddRow(formatSweepLabel(pl), rows[i].ratio, rows[i].retxPerPkt, rows[i].dropPerPkt, rows[i].mse, rows[i].lat)
	}
	return t, nil
}
