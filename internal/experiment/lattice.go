package experiment

import (
	"fmt"

	"tempriv/internal/adversary"
	"tempriv/internal/network"
	"tempriv/internal/report"
)

// AblLattice probes an implicit assumption in the paper's evaluation: its
// sources are strictly periodic (§5.2), and a deployment-aware adversary
// knows the period. A lattice-snapping adversary rounds its estimate to the
// nearest emission slot, which recovers creation times *exactly* whenever
// the delaying noise stays under half a period. The experiment sweeps the
// per-hop mean delay 1/µ and reports raw vs lattice-snapped MSE: temporal
// privacy only begins once the accumulated delay spread exceeds the
// source's own timing granularity.
func AblLattice(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	const ia = 10.0 // source period
	means := []float64{0.25, 0.5, 1, 2, 4, 8, 16, 30}

	type row struct{ raw, lattice, recovered float64 }
	rows := make([]row, len(means))
	err = parallelFor(p.Workers, len(means), func(i int) error {
		q := p
		q.MeanDelay = means[i]
		res, sources, err := figure1Run(q, network.PolicyUnlimited, ia)
		if err != nil {
			return err
		}
		s1 := sources[0]

		base, err := adversary.NewBaseline(q.Tau, q.MeanDelay)
		if err != nil {
			return err
		}
		perFlow, err := adversary.ScorePerFlow(base, res.Observations(), res.Truths())
		if err != nil {
			return err
		}
		raw, err := flowMSE(perFlow, s1)
		if err != nil {
			return err
		}

		inner, err := adversary.NewBaseline(q.Tau, q.MeanDelay)
		if err != nil {
			return err
		}
		lattice, err := adversary.NewLattice(inner, ia)
		if err != nil {
			return err
		}
		// Count exact recoveries alongside the MSE.
		exact := 0
		total := 0
		truths := res.Truths()
		var mse float64
		for j, obs := range res.Observations() {
			if obs.Header.Origin != s1 {
				continue
			}
			est := lattice.Estimate(obs)
			d := est - truths[j]
			mse += d * d
			if d == 0 {
				exact++
			}
			total++
		}
		if total == 0 {
			return fmt.Errorf("experiment: no S1 deliveries at 1/µ=%g", means[i])
		}
		rows[i] = row{
			raw:       raw,
			lattice:   mse / float64(total),
			recovered: float64(exact) / float64(total),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "Extension: lattice adversary vs per-hop delay 1/µ (periodic sources leak their grid)",
		RowHeader: "1/µ",
		Columns:   []string{"raw-MSE", "lattice-MSE", "exactly-recovered"},
		Notes: []string{
			fmt.Sprintf("Figure-1 topology, periodic sources with period 1/λ=%g, unlimited buffers, flow S1, seed=%d", ia, p.Seed),
			"lattice adversary snaps the baseline estimate to the nearest emission slot",
			"expected: below 1/µ ≈ period/(2·√h) the lattice recovers almost every creation time exactly;",
			"privacy only accumulates once delay spread crosses the source's timing granularity",
		},
	}
	for i, m := range means {
		t.AddRow(formatSweepLabel(m), rows[i].raw, rows[i].lattice, rows[i].recovered)
	}
	return t, nil
}
