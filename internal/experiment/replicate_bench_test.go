package experiment

import (
	"testing"

	"tempriv/internal/report"
	"tempriv/internal/resultstream"
)

// benchExperiment is a real (small) replicated workload: fig2b at reduced
// packet count, the cheapest experiment whose tables have the production
// shape.
func benchExperiment(b *testing.B) (Experiment, Params) {
	b.Helper()
	e, err := ByID("fig2b")
	if err != nil {
		b.Fatal(err)
	}
	p := testParams()
	p.Packets = 40
	p.Interarrivals = []float64{2, 10}
	return e, p
}

// BenchmarkReplicateStreamNilSink is the monolithic baseline: the streaming
// engine with no sink attached, i.e. exactly the pre-streaming replicated
// path. The chunk-sink benchmark below must stay close to this number — the
// gate that streaming durability does not regress the engine.
func BenchmarkReplicateStreamNilSink(b *testing.B) {
	e, p := benchExperiment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplicateStream(e, p, 4, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicateStreamChunkSink is the same workload with every
// replicate encoded, checksummed, and persisted through a chunk-store sink
// (fsync deferred, as a long sweep would run).
func BenchmarkReplicateStreamChunkSink(b *testing.B) {
	e, p := benchExperiment(b)
	store, err := resultstream.Open(b.TempDir(), resultstream.Options{SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	const fp = "feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink, err := store.Sink(fp, 4, resultstream.SinkHooks{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReplicateStream(e, p, 4, 1, sink); err != nil {
			b.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := store.Remove(fp); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkTableAccumulatorAdd isolates the streaming reduction's per-
// replicate fold (one-observation Welford merges across every cell).
func BenchmarkTableAccumulatorAdd(b *testing.B) {
	tab := &report.Table{RowHeader: "1/λ", Columns: []string{"a", "b", "c", "d"}}
	for r := 0; r < 10; r++ {
		tab.AddRow("row", 1.5, 2.25, 3.125, 4.0625)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc tableAccumulator
	for i := 0; i < b.N; i++ {
		if err := acc.add(tab); err != nil {
			b.Fatal(err)
		}
	}
}
