package experiment

import (
	"fmt"

	"tempriv/internal/adversary"
	"tempriv/internal/network"
	"tempriv/internal/report"
	"tempriv/internal/topology"
)

// figure1Point is the outcome of the three §5.3 buffering cases at one
// sweep point, measured for flow S1.
type figure1Point struct {
	mseNoDelay, mseUnlimited, mseRCAD float64
	latNoDelay, latUnlimited, latRCAD float64
	mseAdaptiveRCAD                   float64
	msePathAwareRCAD                  float64
	preemptRate                       float64
}

// figure1Sweep runs the paper's three evaluation cases (and both
// adversaries against case 3) at every interarrival in p, in parallel.
func figure1Sweep(p Params) ([]figure1Point, error) {
	paths, err := figure1Paths()
	if err != nil {
		return nil, err
	}
	points := make([]figure1Point, len(p.Interarrivals))
	err = parallelFor(p.Workers, len(p.Interarrivals), func(i int) error {
		ia := p.Interarrivals[i]
		pt := &points[i]

		// Case 1: no artificial delay.
		res, sources, err := figure1Run(p, network.PolicyForward, ia)
		if err != nil {
			return err
		}
		s1 := sources[0]
		pt.mseNoDelay, err = scoreFlow(p, res, s1, 0)
		if err != nil {
			return err
		}
		pt.latNoDelay = res.Flows[s1].Latency.Mean

		// Case 2: exponential delay, unlimited buffers.
		res, sources, err = figure1Run(p, network.PolicyUnlimited, ia)
		if err != nil {
			return err
		}
		s1 = sources[0]
		pt.mseUnlimited, err = scoreFlow(p, res, s1, p.MeanDelay)
		if err != nil {
			return err
		}
		pt.latUnlimited = res.Flows[s1].Latency.Mean

		// Case 3: exponential delay, limited buffers with preemption (RCAD).
		res, sources, err = figure1Run(p, network.PolicyRCAD, ia)
		if err != nil {
			return err
		}
		s1 = sources[0]
		pt.mseRCAD, err = scoreFlow(p, res, s1, p.MeanDelay)
		if err != nil {
			return err
		}
		pt.latRCAD = res.Flows[s1].Latency.Mean

		// Figure 3's adaptive adversary against the same case-3 run.
		adaptive, err := adversary.NewAdaptive(p.Tau, p.MeanDelay, p.Capacity, p.Threshold)
		if err != nil {
			return err
		}
		perFlow, err := adversary.ScorePerFlow(adaptive, res.Observations(), res.Truths())
		if err != nil {
			return err
		}
		pt.mseAdaptiveRCAD, err = flowMSE(perFlow, s1)
		if err != nil {
			return err
		}

		// Extension: the path-aware adversary, which also exploits the
		// near-sink flow aggregation the threat model lets it know about.
		pathAware, err := adversary.NewPathAware(p.Tau, p.MeanDelay, p.Capacity, p.Threshold, paths)
		if err != nil {
			return err
		}
		perFlow, err = adversary.ScorePerFlow(pathAware, res.Observations(), res.Truths())
		if err != nil {
			return err
		}
		pt.msePathAwareRCAD, err = flowMSE(perFlow, s1)
		if err != nil {
			return err
		}

		var preempts, arrivals uint64
		for _, ns := range res.Nodes {
			preempts += ns.Preemptions
			arrivals += ns.Arrivals
		}
		if arrivals > 0 {
			pt.preemptRate = float64(preempts) / float64(arrivals)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

func figureNotes(p Params) []string {
	return []string{
		fmt.Sprintf("topology: Figure 1 (flows S1..S4, hop counts 15/22/9/11, %d shared trunk hops)", topology.Figure1TrunkLen),
		fmt.Sprintf("params: %d packets/source, 1/µ=%g, k=%d, τ=%g, seed=%d", p.Packets, p.MeanDelay, p.Capacity, p.Tau, p.Seed),
		"reported flow: S1 (15 hops), as in the paper",
	}
}

// Fig2a reproduces Figure 2(a): the baseline adversary's mean square error
// against the three buffering cases, swept over the packet interarrival
// time 1/λ.
func Fig2a(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	points, err := figure1Sweep(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:     "Figure 2(a): adversary MSE vs packet interarrival time (1/λ)",
		RowHeader: "1/λ",
		Columns:   []string{"NoDelay", "Delay&UnlimitedBuffers", "Delay&LimitedBuffers(RCAD)"},
		Notes: append(figureNotes(p),
			"expected shape: NoDelay ≈ 0; Unlimited small (≈ h/µ² ≈ 1.35e4); RCAD large at small 1/λ, decaying toward Unlimited"),
	}
	for i, ia := range p.Interarrivals {
		t.AddRow(formatSweepLabel(ia), points[i].mseNoDelay, points[i].mseUnlimited, points[i].mseRCAD)
	}
	return t, nil
}

// Fig2b reproduces Figure 2(b): average end-to-end delivery latency for the
// same three cases.
func Fig2b(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	points, err := figure1Sweep(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:     "Figure 2(b): average delivery latency vs packet interarrival time (1/λ)",
		RowHeader: "1/λ",
		Columns:   []string{"NoDelay", "Delay&UnlimitedBuffers", "Delay&LimitedBuffers(RCAD)"},
		Notes: append(figureNotes(p),
			"expected shape: NoDelay = h·τ = 15; Unlimited ≈ h(τ+1/µ) ≈ 465; RCAD between, ≈2.5x below Unlimited at 1/λ=2"),
	}
	for i, ia := range p.Interarrivals {
		t.AddRow(formatSweepLabel(ia), points[i].latNoDelay, points[i].latUnlimited, points[i].latRCAD)
	}
	return t, nil
}

// Fig3 reproduces Figure 3: baseline vs adaptive adversary MSE against the
// RCAD network, swept over 1/λ.
func Fig3(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	points, err := figure1Sweep(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:     "Figure 3: estimation MSE for the two adversary models (RCAD network)",
		RowHeader: "1/λ",
		Columns:   []string{"BaselineAdversary", "AdaptiveAdversary", "PathAwareAdversary", "preemption-rate"},
		Notes: append(figureNotes(p),
			fmt.Sprintf("adaptive adversary: Erlang-loss threshold %g, per-hop delay min(1/µ, k/λ_flow) in the preemption regime", p.Threshold),
			"path-aware adversary (extension): per-node delay min(1/µ, k/λ_node) using routing knowledge",
			"expected shape: adaptive ≪ baseline at small 1/λ (but not zero), converging as 1/λ grows"),
	}
	for i, ia := range p.Interarrivals {
		t.AddRow(formatSweepLabel(ia), points[i].mseRCAD, points[i].mseAdaptiveRCAD, points[i].msePathAwareRCAD, points[i].preemptRate)
	}
	return t, nil
}
