package experiment

import (
	"fmt"

	"tempriv/internal/adversary"
	"tempriv/internal/buffer"
	"tempriv/internal/delay"
	"tempriv/internal/mix"
	"tempriv/internal/network"
	"tempriv/internal/report"
	"tempriv/internal/rng"
	"tempriv/internal/sim"
	"tempriv/internal/topology"
	"tempriv/internal/traffic"
)

// AblMix compares RCAD against the anonymity-network mechanisms from the
// paper's related work (§6): Kesdogan's SG-mix (independent exponential
// delay per message — Danezis proved it optimal for a given mean delay at a
// single node) and Chaum-style batching mixes (threshold pool mix, timed
// mix). Privacy is scored with the genie constant-offset bound
// (adversary.BestConstantOffsetMSE), which is well-defined for every scheme
// regardless of its delay distribution.
//
// The experiment quantifies the paper's §6 observation that mix techniques
// "do not extend to networks of queues": on a multi-hop path, batch rules
// either stall low-rate segments (latency explodes) or release with little
// temporal noise (privacy collapses), while per-packet random delays — the
// SG-mix at one node, RCAD network-wide — buy variance at every hop for a
// bounded buffer.
func AblMix(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	const ia = 5.0

	type scheme struct {
		name   string
		policy network.PolicyKind
		delay  delay.Distribution
		custom func(*sim.Scheduler, buffer.Forward, *rng.Source) (buffer.Policy, error)
	}
	expDist, err := delay.NewExponential(p.MeanDelay)
	if err != nil {
		return nil, err
	}
	schemes := []scheme{
		{name: "no-delay", policy: network.PolicyForward},
		{name: "rcad(k=10)", policy: network.PolicyRCAD, delay: expDist},
		{name: "sg-mix", policy: network.PolicyUnlimited, delay: expDist},
		{
			name:   "threshold-mix(10)",
			policy: network.PolicyCustom,
			custom: func(s *sim.Scheduler, f buffer.Forward, src *rng.Source) (buffer.Policy, error) {
				return mix.NewThresholdMix(s, f, 10, 0, src)
			},
		},
		{
			name:   "pool-mix(8+2)",
			policy: network.PolicyCustom,
			custom: func(s *sim.Scheduler, f buffer.Forward, src *rng.Source) (buffer.Policy, error) {
				return mix.NewThresholdMix(s, f, 8, 2, src)
			},
		},
		{
			name:   "timed-mix(30)",
			policy: network.PolicyCustom,
			custom: func(s *sim.Scheduler, f buffer.Forward, src *rng.Source) (buffer.Policy, error) {
				return mix.NewTimedMix(s, f, p.MeanDelay, src)
			},
		},
	}

	type row struct{ genieMSE, lat, peakOcc, delivered float64 }
	rows := make([]row, len(schemes))
	err = parallelFor(p.Workers, len(schemes), func(i int) error {
		sc := schemes[i]
		topo, sources, err := topology.Figure1()
		if err != nil {
			return err
		}
		proc, err := traffic.NewPeriodic(ia)
		if err != nil {
			return err
		}
		srcs := make([]network.Source, len(sources))
		for k, s := range sources {
			srcs[k] = network.Source{Node: s, Process: proc, Count: p.Packets}
		}
		res, err := network.RunCached(p.Engines, network.Config{
			Topology:          topo,
			Sources:           srcs,
			Policy:            sc.policy,
			Delay:             sc.delay,
			Capacity:          p.Capacity,
			CustomPolicy:      sc.custom,
			TransmissionDelay: p.Tau,
			Seed:              p.Seed,
		})
		if err != nil {
			return fmt.Errorf("scheme %s: %w", sc.name, err)
		}
		genie, err := adversary.BestConstantOffsetMSE(res.Observations(), res.Truths())
		if err != nil {
			return err
		}
		s1 := sources[0]
		peak := 0.0
		for _, ns := range res.Nodes {
			if ns.MaxOccupancy > peak {
				peak = ns.MaxOccupancy
			}
		}
		rows[i] = row{
			genieMSE:  genie[s1],
			lat:       res.Flows[s1].Latency.Mean,
			peakOcc:   peak,
			delivered: float64(res.Flows[s1].Delivered),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:     "§6 comparison: RCAD vs mix-network mechanisms (flow S1)",
		RowHeader: "scheme",
		Columns:   []string{"genie-MSE(floor)", "mean-latency", "peak-occupancy", "delivered"},
		Notes: []string{
			fmt.Sprintf("Figure-1 topology, 1/λ=%g per source, mean delay budget %g, %d packets/source, seed=%d", ia, p.MeanDelay, p.Packets, p.Seed),
			"genie-MSE is the best-constant-offset bound: the MSE of an adversary that knows each flow's exact mean delay (no parametric adversary beats it)",
			"expected: sg-mix buys the most variance per unit latency at a single-node view, but needs unbounded buffers;",
			"batch mixes pay multi-hop latency far above their variance (they 'do not extend to networks of queues', §6);",
			"rcad holds a 10-slot buffer everywhere and keeps most of the sg-mix privacy at lower latency",
			"delivered < packets means messages stranded in mix pools when traffic ends — a further batch-mix cost",
		},
	}
	for i, sc := range schemes {
		t.AddRow(sc.name, rows[i].genieMSE, rows[i].lat, rows[i].peakOcc, rows[i].delivered)
	}
	return t, nil
}
