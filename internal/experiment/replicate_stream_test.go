package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"tempriv/internal/report"
)

// recordingReplicateSink captures the engine's sink protocol so the
// single-goroutine, in-order contract is checkable.
type recordingReplicateSink struct {
	have  map[int]*report.Table
	haves []int
	emits []int
	fresh map[int]bool
	tabs  map[int]*report.Table
	fail  error
}

func newRecordingSink() *recordingReplicateSink {
	return &recordingReplicateSink{
		have:  make(map[int]*report.Table),
		fresh: make(map[int]bool),
		tabs:  make(map[int]*report.Table),
	}
}

func (r *recordingReplicateSink) Have(rep int) *report.Table {
	r.haves = append(r.haves, rep)
	return r.have[rep]
}

func (r *recordingReplicateSink) Emit(rep int, fresh bool, tab *report.Table) error {
	r.emits = append(r.emits, rep)
	r.fresh[rep] = fresh
	r.tabs[rep] = tab
	return r.fail
}

func TestReplicateStreamSinkSeesOrderedProtocol(t *testing.T) {
	e := syntheticExperiment(func(seed uint64) float64 { return float64(seed) })
	sink := newRecordingSink()
	const n = 6
	// Workers > 1 so completions genuinely race; the reorder buffer must
	// still deliver Emit in replicate order.
	tab, err := ReplicateStream(e, Params{Seed: 3}, n, 4, sink)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil {
		t.Fatal("nil table")
	}
	for i := 0; i < n; i++ {
		if sink.haves[i] != i {
			t.Fatalf("Have order %v, want 0..%d ascending", sink.haves, n-1)
		}
		if sink.emits[i] != i {
			t.Fatalf("Emit order %v, want 0..%d ascending", sink.emits, n-1)
		}
		if !sink.fresh[i] {
			t.Fatalf("replicate %d reported as resumed with an empty sink", i)
		}
	}
	// Each emitted table is the replicate's own seed-derived result.
	for i := 0; i < n; i++ {
		if got := sink.tabs[i].Rows[0].Values[0]; got != float64(3+i) {
			t.Fatalf("replicate %d table value %v, want %d", i, got, 3+i)
		}
	}
}

func TestReplicateStreamWithSinkMatchesMonolithicByteForByte(t *testing.T) {
	// The differential oracle of the streaming refactor: the sink is an
	// observer, never an influence — output with a sink attached is
	// byte-identical to the pre-streaming path (nil sink) at every worker
	// count.
	e, err := ByID("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Packets = 120
	p.Interarrivals = []float64{2, 10}
	baseline, err := ReplicateStream(e, p, 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, baseline)
	for _, workers := range []int{1, 3} {
		got, err := ReplicateStream(e, p, 4, workers, newRecordingSink())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render(t, got), want) {
			t.Fatalf("sink attached (workers=%d) changed the output bytes", workers)
		}
	}
}

func TestReplicateStreamResumeIsByteIdentical(t *testing.T) {
	// A resumed run — some replicates answered from the sink instead of
	// recomputed — must reduce to the same bytes, because Have returns the
	// exact seed-derived tables and the reduction order is fixed.
	e, err := ByID("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Packets = 120
	p.Interarrivals = []float64{2, 10}
	const n = 4
	baseline, err := ReplicateStream(e, p, n, 2, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Persist replicates 0 and 3 (as a crashed run would have), recompute
	// them out-of-band via the same seed derivation.
	sink := newRecordingSink()
	norm, err := p.normalized()
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []int{0, 3} {
		q := norm
		q.Seed = norm.Seed + uint64(rep)
		tab, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		sink.have[rep] = tab
	}

	resumed, err := ReplicateStream(e, p, n, 2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(t, resumed), render(t, baseline)) {
		t.Fatal("resumed run is not byte-identical to the uninterrupted run")
	}
	for _, rep := range []int{0, 3} {
		if sink.fresh[rep] {
			t.Fatalf("resumed replicate %d recomputed", rep)
		}
	}
	for _, rep := range []int{1, 2} {
		if !sink.fresh[rep] {
			t.Fatalf("missing replicate %d not recomputed", rep)
		}
	}
}

func TestReplicateStreamAllResumedRunsNothing(t *testing.T) {
	runs := 0
	e := Experiment{
		ID: "counter", Title: "t", Paper: "p",
		Run: func(p Params) (*report.Table, error) {
			runs++
			tab := &report.Table{RowHeader: "x", Columns: []string{"v"}}
			tab.AddRow("only", float64(p.Seed))
			return tab, nil
		},
	}
	const n = 3
	sink := newRecordingSink()
	for rep := 0; rep < n; rep++ {
		tab := &report.Table{RowHeader: "x", Columns: []string{"v"}}
		tab.AddRow("only", float64(1+rep))
		sink.have[rep] = tab
	}
	tab, err := ReplicateStream(e, Params{Seed: 1}, n, 2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Fatalf("fully-resumed run still executed %d replicate(s)", runs)
	}
	if got := tab.Rows[0].Values[0]; got != 2 { // mean of 1,2,3
		t.Fatalf("mean = %v, want 2", got)
	}
}

func TestReplicateStreamSinkErrorAborts(t *testing.T) {
	e := syntheticExperiment(func(seed uint64) float64 { return float64(seed) })
	sink := newRecordingSink()
	sink.fail = errors.New("disk gone")
	_, err := ReplicateStream(e, Params{Seed: 1}, 3, 2, sink)
	if err == nil || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("err = %v, want sink failure", err)
	}
	// The lowest-index failure wins, matching the engine's deterministic
	// error contract.
	if !strings.Contains(err.Error(), "replication 0") {
		t.Fatalf("err = %v, want replication 0 to report first", err)
	}
}

func TestReplicateStreamErrorMessagesMatchLegacy(t *testing.T) {
	// The streaming rewrite must keep the historical error text — callers
	// and operators grep for it.
	fail := Experiment{
		ID: "boom", Title: "t", Paper: "p",
		Run: func(p Params) (*report.Table, error) {
			if p.Seed == 2 {
				return nil, fmt.Errorf("kaput")
			}
			tab := &report.Table{RowHeader: "x", Columns: []string{"v"}}
			tab.AddRow("only", 1)
			return tab, nil
		},
	}
	_, err := ReplicateStream(fail, Params{Seed: 1}, 3, 2, nil)
	if err == nil || !strings.Contains(err.Error(), "experiment: replication 1: kaput") {
		t.Fatalf("err = %v, want legacy replication-error format", err)
	}
}
