package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"tempriv/internal/network"
	"tempriv/internal/report"
)

// syntheticExperiment returns an experiment whose single cell is a
// deterministic function of the seed, so replication statistics are exactly
// checkable.
func syntheticExperiment(f func(seed uint64) float64) Experiment {
	return Experiment{
		ID:    "synthetic",
		Title: "synthetic",
		Paper: "test",
		Run: func(p Params) (*report.Table, error) {
			t := &report.Table{Title: "synthetic", RowHeader: "x", Columns: []string{"v"}}
			t.AddRow("only", f(p.Seed))
			return t, nil
		},
	}
}

func TestReplicateExactStatistics(t *testing.T) {
	// Seeds 10..14 → values 10..14: mean 12, sample std sqrt(2.5).
	e := syntheticExperiment(func(seed uint64) float64 { return float64(seed) })
	p := Params{Seed: 10}
	tab, err := Replicate(e, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 2 || tab.Columns[0] != "v" || tab.Columns[1] != "v ±" {
		t.Fatalf("columns = %v", tab.Columns)
	}
	row := tab.Rows[0]
	if math.Abs(row.Values[0]-12) > 1e-12 {
		t.Fatalf("mean = %v, want 12", row.Values[0])
	}
	wantHalf := 1.96 * math.Sqrt(2.5/5)
	if math.Abs(row.Values[1]-wantHalf) > 1e-9 {
		t.Fatalf("ci half-width = %v, want %v", row.Values[1], wantHalf)
	}
	if !strings.Contains(tab.Title, "mean of 5 seeds") {
		t.Fatalf("title = %q", tab.Title)
	}
}

func TestReplicateConstantExperimentHasZeroCI(t *testing.T) {
	e := syntheticExperiment(func(uint64) float64 { return 7 })
	tab, err := Replicate(e, Params{Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0].Values[0] != 7 || tab.Rows[0].Values[1] != 0 {
		t.Fatalf("row = %v, want [7 0]", tab.Rows[0].Values)
	}
}

func TestReplicateValidation(t *testing.T) {
	e := syntheticExperiment(func(uint64) float64 { return 0 })
	if _, err := Replicate(e, Params{}, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Replicate(Experiment{}, Params{}, 3); err == nil {
		t.Fatal("nil Run accepted")
	}
}

func TestReplicateRejectsShapeChange(t *testing.T) {
	e := Experiment{
		ID: "shapeshifter", Title: "t", Paper: "p",
		Run: func(p Params) (*report.Table, error) {
			tab := &report.Table{RowHeader: "x", Columns: []string{"v"}}
			// A different label per seed must be rejected.
			tab.AddRow(fmt.Sprintf("row-%d", p.Seed), 1)
			return tab, nil
		},
	}
	if _, err := Replicate(e, Params{Seed: 1}, 2); err == nil {
		t.Fatal("label change across replications accepted")
	}
}

func TestReplicateSkipsNaNCells(t *testing.T) {
	e := Experiment{
		ID: "nan", Title: "t", Paper: "p",
		Run: func(p Params) (*report.Table, error) {
			tab := &report.Table{RowHeader: "x", Columns: []string{"v"}}
			v := math.NaN()
			if p.Seed%2 == 0 {
				v = 4
			}
			tab.AddRow("only", v)
			return tab, nil
		},
	}
	tab, err := Replicate(e, Params{Seed: 2}, 3) // seeds 2,3,4 → values 4, NaN, 4
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0].Values[0] != 4 {
		t.Fatalf("NaN cells not skipped: mean = %v", tab.Rows[0].Values[0])
	}
}

// render returns the table's exact text form for byte-level comparison.
func render(t *testing.T, tab *report.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplicateParallelMatchesSerialByteForByte(t *testing.T) {
	e, err := ByID("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Packets = 120
	p.Interarrivals = []float64{2, 10}
	serial, err := ReplicateParallel(e, p, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		parallel, err := ReplicateParallel(e, p, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := render(t, parallel), render(t, serial); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d output differs from serial:\n--- parallel ---\n%s\n--- serial ---\n%s",
				workers, got, want)
		}
	}
}

func TestReplicateParallelSeedDerivationIsByIndex(t *testing.T) {
	// With many workers the completion order is nondeterministic, but each
	// replication's value must still be folded in by its index-derived seed.
	e := syntheticExperiment(func(seed uint64) float64 { return float64(seed) })
	tab, err := ReplicateParallel(e, Params{Seed: 100}, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Seeds 100..107 → mean 103.5.
	if math.Abs(tab.Rows[0].Values[0]-103.5) > 1e-12 {
		t.Fatalf("mean = %v, want 103.5", tab.Rows[0].Values[0])
	}
	if !strings.Contains(strings.Join(tab.Notes, "\n"), "seeds 100..107") {
		t.Fatalf("notes = %v", tab.Notes)
	}
}

func TestReplicateParallelPropagatesRunError(t *testing.T) {
	boom := errors.New("boom")
	e := Experiment{
		ID: "failing", Title: "t", Paper: "p",
		Run: func(p Params) (*report.Table, error) {
			if p.Seed == 3 {
				return nil, boom
			}
			tab := &report.Table{RowHeader: "x", Columns: []string{"v"}}
			tab.AddRow("only", 1)
			return tab, nil
		},
	}
	_, err := ReplicateParallel(e, Params{Seed: 1}, 4, 4)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestReplicateRealExperiment(t *testing.T) {
	e, err := ByID("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Packets = 150
	p.Interarrivals = []float64{2}
	tab, err := Replicate(e, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// NoDelay latency is deterministic (h·τ): mean 15, CI 0.
	if math.Abs(tab.Rows[0].Values[0]-15) > 1e-9 || tab.Rows[0].Values[1] != 0 {
		t.Fatalf("NoDelay columns = %v, want [15 0 ...]", tab.Rows[0].Values[:2])
	}
	// RCAD latency varies across seeds: CI strictly positive and small
	// relative to the mean.
	rcadMean, rcadCI := tab.Rows[0].Values[4], tab.Rows[0].Values[5]
	if rcadCI <= 0 {
		t.Fatalf("RCAD CI = %v, want > 0", rcadCI)
	}
	if rcadCI > 0.5*rcadMean {
		t.Fatalf("RCAD CI %v implausibly wide vs mean %v", rcadCI, rcadMean)
	}
}

// TestReplicateEngineReuseMatchesFresh is the engine-reuse differential at
// the experiment layer: the same replicated sweep run three ways — fresh
// engines per replicate, per-worker reused engines, and a caller-shared
// engine cache — must render byte-identical tables. Engine reuse is a pure
// execution optimisation; any byte of divergence is state leaking across a
// rearm.
func TestReplicateEngineReuseMatchesFresh(t *testing.T) {
	e, err := ByID("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Packets = 120
	p.Interarrivals = []float64{2, 10}
	const n = 4

	fresh, err := ReplicateRun(e, p, n, ReplicateConfig{Workers: 1, FreshEngines: true})
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, fresh)

	for _, workers := range []int{1, 2, 4} {
		reused, err := ReplicateRun(e, p, n, ReplicateConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := render(t, reused); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d with engine reuse differs from fresh engines:\n--- reused ---\n%s\n--- fresh ---\n%s",
				workers, got, want)
		}
	}

	shared := p
	shared.Engines = network.NewEngineCache()
	cached, err := ReplicateRun(e, shared, n, ReplicateConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(t, cached); !bytes.Equal(got, want) {
		t.Fatalf("caller-shared engine cache diverged from fresh engines:\n--- cached ---\n%s\n--- fresh ---\n%s", got, want)
	}
}
