package experiment

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"tempriv/internal/metrics"
	"tempriv/internal/network"
	"tempriv/internal/report"
)

// ReplicateSink receives per-replicate tables as the engine produces them —
// the seam that makes replicated runs streamable and crash-resumable
// (internal/resultstream persists each table as a checksummed chunk, the
// HTTP layer serves partials, and a restarted job answers Have from the
// surviving chunks).
//
// The engine calls Have exactly once per replicate and Emit exactly once
// per replicate, both from its coordinating goroutine, Emit in strict
// replicate-index order. A sink therefore needs no internal locking.
type ReplicateSink interface {
	// Have returns an already-persisted table for replicate rep, or nil to
	// have the engine compute it. A non-nil table must be the exact table
	// the replicate's seed would produce — the engine trusts it.
	Have(rep int) *report.Table
	// Emit delivers replicate rep's table in index order. fresh is false
	// for tables that came from Have. A non-nil error aborts the run.
	Emit(rep int, fresh bool, tab *report.Table) error
}

// Replicate runs an experiment n times under seeds p.Seed … p.Seed+n−1 and
// aggregates the runs into one table: every value column C of the
// underlying experiment becomes two columns, C (the across-seed mean) and
// "C ±" (the half-width of a normal-approximation 95 % confidence interval,
// 1.96·s/√n). The paper reports single runs; replication quantifies how
// much of each curve is signal.
func Replicate(e Experiment, p Params, n int) (*report.Table, error) {
	return ReplicateParallel(e, p, n, 1)
}

// ReplicateParallel is Replicate with the n replications spread over up to
// workers goroutines. Each replication's seed is derived from its index
// (p.Seed+rep), not from scheduling, and the per-replication tables are
// reduced in replication order via Welford.Merge — the same reduction the
// serial path uses — so the output is byte-identical for every worker
// count.
func ReplicateParallel(e Experiment, p Params, n, workers int) (*report.Table, error) {
	return ReplicateStream(e, p, n, workers, nil)
}

// ReplicateConfig tunes how ReplicateRun executes. Every field is
// execution-only: the output table is byte-identical for any setting.
type ReplicateConfig struct {
	// Workers bounds replication parallelism. Zero or negative means one
	// worker per available CPU (runtime.GOMAXPROCS(0)); 1 forces the serial
	// path.
	Workers int
	// Sink, when set, streams per-replicate tables and answers resume
	// queries; see ReplicateSink.
	Sink ReplicateSink
	// FreshEngines disables per-worker engine reuse: every replicate builds
	// its simulations from scratch, exactly as a plain run does. The knob
	// exists for the differential tests and for debugging; results are
	// byte-identical either way.
	FreshEngines bool
}

// ReplicateRun is the full-control replication entry point: n replicates of
// e under seeds p.Seed … p.Seed+n−1, partitioned over rc.Workers goroutines
// (defaulting to one per CPU), each worker reusing its own pool of
// arena-backed simulation engines across the replicates it draws, with the
// per-replicate tables merged into the Welford reduction — and streamed to
// rc.Sink — in strict replicate order. The deterministic seq-ordered merge
// makes the output byte-identical to the serial, fresh-engine path.
func ReplicateRun(e Experiment, p Params, n int, rc ReplicateConfig) (*report.Table, error) {
	workers := rc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return replicateStream(e, p, n, workers, rc.Sink, rc.FreshEngines)
}

// ReplicateStream is the streaming execution path every replicated run now
// flows through: replicate tables are folded into the running Welford
// reduction (and handed to sink) in replicate-index order as they
// complete, instead of accumulating the whole run in memory first. With a
// nil sink it is exactly ReplicateParallel; with a sink it additionally
// supports resume — replicates the sink already holds (Have) are not
// recomputed, and the reduction stays byte-identical because the same
// tables enter it in the same order either way.
func ReplicateStream(e Experiment, p Params, n, workers int, sink ReplicateSink) (*report.Table, error) {
	return replicateStream(e, p, n, workers, sink, false)
}

// replicateStream is the one replication engine behind Replicate,
// ReplicateParallel, ReplicateStream and ReplicateRun.
func replicateStream(e Experiment, p Params, n, workers int, sink ReplicateSink, freshEngines bool) (*report.Table, error) {
	if e.Run == nil {
		return nil, errors.New("experiment: replicate of experiment without Run")
	}
	if n < 2 {
		return nil, fmt.Errorf("experiment: replication needs n >= 2, got %d", n)
	}
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Resume pass: ask the sink (single-goroutine contract) which
	// replicates are already in hand before any worker starts. The missing
	// list is snapshotted here because the consumer releases resumed entries
	// as it folds them — the feeder must not read that array concurrently.
	resumed := make([]*report.Table, n)
	missing := make([]int, 0, n)
	for rep := 0; rep < n; rep++ {
		if sink != nil {
			resumed[rep] = sink.Have(rep)
		}
		if resumed[rep] == nil {
			missing = append(missing, rep)
		}
	}

	type item struct {
		rep int
		tab *report.Table
		err error
	}
	reps := make(chan int)
	out := make(chan item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a private engine cache: the replicates it
			// draws reuse one arena-backed engine per simulation structure
			// instead of rebuilding it per seed. Reuse is byte-invisible
			// (the engine rearm contract), so this changes wall-clock only.
			cache := p.Engines
			if freshEngines {
				cache = nil
			} else if cache == nil {
				cache = network.NewEngineCache()
			}
			for rep := range reps {
				q := p
				q.Seed = p.Seed + uint64(rep)
				q.Engines = cache
				tab, err := e.Run(q)
				if err == nil {
					err = tab.Validate()
				}
				if err != nil {
					err = fmt.Errorf("experiment: replication %d: %w", rep, err)
				}
				out <- item{rep: rep, tab: tab, err: err}
			}
		}()
	}
	go func() {
		for _, rep := range missing {
			reps <- rep
		}
		close(reps)
		wg.Wait()
		close(out)
	}()

	// Consume completions through a reorder buffer so the reduction (and
	// the sink) always sees replicate order; as in the pre-streaming path,
	// every replicate runs to completion and the lowest-index error wins.
	var acc tableAccumulator
	pending := make(map[int]item, workers)
	errs := make([]error, n)
	next := 0
	process := func(it item) {
		if it.err != nil {
			errs[it.rep] = it.err
			return
		}
		fresh := resumed[it.rep] == nil
		if err := acc.add(it.tab); err != nil {
			errs[it.rep] = fmt.Errorf("experiment: replication %d %w", it.rep, err)
			return
		}
		if sink != nil {
			if err := sink.Emit(it.rep, fresh, it.tab); err != nil {
				errs[it.rep] = fmt.Errorf("experiment: replication %d: sink: %w", it.rep, err)
			}
		}
	}
	advance := func() {
		for next < n {
			it, ok := pending[next]
			switch {
			case ok:
				delete(pending, next)
			case resumed[next] != nil:
				it = item{rep: next, tab: resumed[next]}
			default:
				return
			}
			// Stop folding after the first failure but keep draining, so
			// workers never block and the error is deterministic.
			if firstErr(errs, next) == nil {
				process(it)
			}
			resumed[next] = nil // release for GC once merged
			next++
		}
	}
	advance()
	for it := range out {
		pending[it.rep] = it
		advance()
	}
	advance()
	if err := firstErr(errs, n); err != nil {
		return nil, err
	}
	return acc.table(p, n)
}

// firstErr returns the lowest-index error among errs[:limit].
func firstErr(errs []error, limit int) error {
	for i := 0; i < limit; i++ {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// tableAccumulator folds replicate tables, delivered in replicate order,
// into the running across-seed mean ± CI aggregate. Every cell is a
// one-observation Welford accumulator merged into the running cell — the
// identical arithmetic (in the identical order) the pre-streaming
// reduceReplicates performed over a fully materialized table slice, so the
// streaming path is byte-identical to the monolithic one.
type tableAccumulator struct {
	shape *report.Table
	cells [][]metrics.Welford
	reps  int
}

// add folds one replicate's table. The first table fixes the shape; every
// later table must match it exactly.
func (a *tableAccumulator) add(tab *report.Table) error {
	if a.shape == nil {
		a.shape = tab
		a.cells = make([][]metrics.Welford, len(tab.Rows))
		for i, r := range tab.Rows {
			a.cells[i] = make([]metrics.Welford, len(r.Values))
		}
	} else {
		if len(tab.Rows) != len(a.shape.Rows) || len(tab.Columns) != len(a.shape.Columns) {
			return errors.New("changed table shape")
		}
	}
	for i, r := range tab.Rows {
		if r.Label != a.shape.Rows[i].Label {
			return fmt.Errorf("changed row %d label to %q", i, r.Label)
		}
		for j, v := range r.Values {
			if math.IsNaN(v) {
				continue
			}
			var one metrics.Welford
			one.Add(v)
			a.cells[i][j].Merge(&one)
		}
	}
	a.reps++
	return nil
}

// table renders the aggregate after all n replicates have been folded.
func (a *tableAccumulator) table(p Params, n int) (*report.Table, error) {
	if a.reps != n {
		return nil, fmt.Errorf("experiment: reduced %d of %d replications", a.reps, n)
	}
	shape := a.shape
	out := &report.Table{
		Title:     shape.Title + fmt.Sprintf(" — mean of %d seeds", n),
		RowHeader: shape.RowHeader,
		Notes: append(append([]string(nil), shape.Notes...),
			fmt.Sprintf("replicated over seeds %d..%d; ± columns are 1.96·s/√n (normal-approx 95%% CI)", p.Seed, p.Seed+uint64(n)-1)),
	}
	for _, c := range shape.Columns {
		out.Columns = append(out.Columns, c, c+" ±")
	}
	for i, r := range shape.Rows {
		values := make([]float64, 0, 2*len(r.Values))
		for j := range r.Values {
			w := &a.cells[i][j]
			if w.Count() == 0 {
				values = append(values, math.NaN(), math.NaN())
				continue
			}
			half := 0.0
			if w.Count() > 1 {
				// Sample std needs the n/(n−1) correction on the population
				// variance Welford reports.
				nn := float64(w.Count())
				sampleVar := w.Variance() * nn / (nn - 1)
				half = 1.96 * math.Sqrt(sampleVar/nn)
			}
			values = append(values, w.Mean(), half)
		}
		out.AddRow(r.Label, values...)
	}
	return out, nil
}
