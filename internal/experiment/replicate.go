package experiment

import (
	"errors"
	"fmt"
	"math"

	"tempriv/internal/metrics"
	"tempriv/internal/report"
)

// Replicate runs an experiment n times under seeds p.Seed … p.Seed+n−1 and
// aggregates the runs into one table: every value column C of the
// underlying experiment becomes two columns, C (the across-seed mean) and
// "C ±" (the half-width of a normal-approximation 95 % confidence interval,
// 1.96·s/√n). The paper reports single runs; replication quantifies how
// much of each curve is signal.
//
// Replications execute sequentially — each run already parallelises its
// sweep internally — and every run must produce the same table shape
// (guaranteed for all registered experiments, whose row labels depend only
// on parameters).
func Replicate(e Experiment, p Params, n int) (*report.Table, error) {
	return ReplicateParallel(e, p, n, 1)
}

// ReplicateParallel is Replicate with the n replications spread over up to
// workers goroutines. Each replication's seed is derived from its index
// (p.Seed+rep), not from scheduling, and the per-replication tables are
// reduced in replication order via Welford.Merge — the same reduction the
// serial path uses — so the output is byte-identical for every worker
// count.
func ReplicateParallel(e Experiment, p Params, n, workers int) (*report.Table, error) {
	if e.Run == nil {
		return nil, errors.New("experiment: replicate of experiment without Run")
	}
	if n < 2 {
		return nil, fmt.Errorf("experiment: replication needs n >= 2, got %d", n)
	}
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}

	tabs := make([]*report.Table, n)
	err = parallelFor(workers, n, func(rep int) error {
		q := p
		q.Seed = p.Seed + uint64(rep)
		tab, err := e.Run(q)
		if err != nil {
			return fmt.Errorf("experiment: replication %d: %w", rep, err)
		}
		if err := tab.Validate(); err != nil {
			return fmt.Errorf("experiment: replication %d: %w", rep, err)
		}
		tabs[rep] = tab
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reduceReplicates(tabs, p)
}

// reduceReplicates folds per-replication tables (in replication order) into
// the aggregate mean ± CI table. Every cell is a one-observation Welford
// accumulator merged into the running across-seed accumulator, so parallel
// and serial replication share one arithmetic path.
func reduceReplicates(tabs []*report.Table, p Params) (*report.Table, error) {
	n := len(tabs)
	shape := tabs[0]
	cells := make([][]metrics.Welford, len(shape.Rows))
	for i, r := range shape.Rows {
		cells[i] = make([]metrics.Welford, len(r.Values))
	}
	for rep, tab := range tabs {
		if len(tab.Rows) != len(shape.Rows) || len(tab.Columns) != len(shape.Columns) {
			return nil, fmt.Errorf("experiment: replication %d changed table shape", rep)
		}
		for i, r := range tab.Rows {
			if r.Label != shape.Rows[i].Label {
				return nil, fmt.Errorf("experiment: replication %d changed row %d label to %q", rep, i, r.Label)
			}
			for j, v := range r.Values {
				if math.IsNaN(v) {
					continue
				}
				var one metrics.Welford
				one.Add(v)
				cells[i][j].Merge(&one)
			}
		}
	}

	out := &report.Table{
		Title:     shape.Title + fmt.Sprintf(" — mean of %d seeds", n),
		RowHeader: shape.RowHeader,
		Notes: append(append([]string(nil), shape.Notes...),
			fmt.Sprintf("replicated over seeds %d..%d; ± columns are 1.96·s/√n (normal-approx 95%% CI)", p.Seed, p.Seed+uint64(n)-1)),
	}
	for _, c := range shape.Columns {
		out.Columns = append(out.Columns, c, c+" ±")
	}
	for i, r := range shape.Rows {
		values := make([]float64, 0, 2*len(r.Values))
		for j := range r.Values {
			w := &cells[i][j]
			if w.Count() == 0 {
				values = append(values, math.NaN(), math.NaN())
				continue
			}
			half := 0.0
			if w.Count() > 1 {
				// Sample std needs the n/(n−1) correction on the population
				// variance Welford reports.
				nn := float64(w.Count())
				sampleVar := w.Variance() * nn / (nn - 1)
				half = 1.96 * math.Sqrt(sampleVar/nn)
			}
			values = append(values, w.Mean(), half)
		}
		out.AddRow(r.Label, values...)
	}
	return out, nil
}
