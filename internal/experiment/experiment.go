// Package experiment defines the reproducible experiments of this
// repository: one per results figure in the paper (Figures 2(a), 2(b), 3),
// one per analytic claim worth validating against simulation (§3's
// information bounds, §4's queueing formulas), and one per design-choice
// ablation called out in DESIGN.md.
//
// Every experiment is a pure function of Params (seed included) returning a
// report.Table, so the whole evaluation is regenerable with
// `go run ./cmd/sweep -exp all` or benchmarked with `go test -bench .`.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tempriv/internal/adversary"
	"tempriv/internal/delay"
	"tempriv/internal/metrics"
	"tempriv/internal/network"
	"tempriv/internal/packet"
	"tempriv/internal/report"
	"tempriv/internal/routing"
	"tempriv/internal/topology"
	"tempriv/internal/traffic"
)

// Params are the shared experiment knobs, defaulting to the paper's §5.2
// settings.
type Params struct {
	// Seed drives all randomness; equal Params produce identical tables.
	Seed uint64
	// Packets is the number of packets per source (paper: 1000).
	Packets int
	// Interarrivals is the 1/λ sweep (paper: 2 … 20 time units).
	Interarrivals []float64
	// MeanDelay is the per-hop mean buffering delay 1/µ (paper: 30).
	MeanDelay float64
	// Capacity is the buffer size k (paper: 10, a Mica-2 approximation).
	Capacity int
	// Tau is the per-hop transmission delay τ (paper: 1).
	Tau float64
	// Threshold is the adaptive adversary's Erlang-loss switch point
	// (paper: 0.1).
	Threshold float64
	// Workers bounds sweep parallelism; defaults to GOMAXPROCS.
	Workers int
	// Engines optionally pools reusable simulation engines across the
	// experiment's runs (see network.EngineCache): structurally identical
	// simulations then share routes, pools and the packet arena instead of
	// rebuilding them per run. Execution-only — engine reuse never affects
	// result bytes — and safe to share across parallel sweep workers (the
	// cache checks engines out). Replication installs per-worker caches
	// automatically; see ReplicateRun.
	Engines *network.EngineCache
}

// Defaults returns the paper's evaluation parameters (§5.2).
func Defaults() Params {
	return Params{
		Seed:          1,
		Packets:       1000,
		Interarrivals: []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20},
		MeanDelay:     30,
		Capacity:      10,
		Tau:           1,
		Threshold:     0.1,
		Workers:       runtime.GOMAXPROCS(0),
	}
}

// normalized fills zero fields of p from Defaults and validates the rest.
func (p Params) normalized() (Params, error) {
	d := Defaults()
	if p.Packets == 0 {
		p.Packets = d.Packets
	}
	if len(p.Interarrivals) == 0 {
		p.Interarrivals = d.Interarrivals
	}
	if p.MeanDelay == 0 {
		p.MeanDelay = d.MeanDelay
	}
	if p.Capacity == 0 {
		p.Capacity = d.Capacity
	}
	if p.Tau == 0 {
		p.Tau = d.Tau
	}
	if p.Threshold == 0 {
		p.Threshold = d.Threshold
	}
	if p.Workers <= 0 {
		p.Workers = d.Workers
	}
	if p.Packets < 0 {
		return p, fmt.Errorf("experiment: negative packet count %d", p.Packets)
	}
	if p.MeanDelay < 0 || p.Tau < 0 {
		return p, fmt.Errorf("experiment: negative delay parameters")
	}
	if p.Capacity < 1 {
		return p, fmt.Errorf("experiment: capacity must be >= 1, got %d", p.Capacity)
	}
	for _, ia := range p.Interarrivals {
		if ia <= 0 {
			return p, fmt.Errorf("experiment: non-positive interarrival %v", ia)
		}
	}
	return p, nil
}

// Experiment is one reproducible study.
type Experiment struct {
	// ID is the stable identifier used by cmd/sweep and the benchmarks.
	ID string
	// Title is a one-line human description.
	Title string
	// Paper locates the corresponding artifact in the paper.
	Paper string
	// Run executes the experiment.
	Run func(p Params) (*report.Table, error)
}

// All returns every registered experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig2a", Title: "Adversary MSE vs packet interarrival time (three buffering cases)", Paper: "Figure 2(a)", Run: Fig2a},
		{ID: "fig2b", Title: "Average delivery latency vs packet interarrival time (three buffering cases)", Paper: "Figure 2(b)", Run: Fig2b},
		{ID: "fig3", Title: "Baseline vs adaptive adversary MSE under RCAD", Paper: "Figure 3", Run: Fig3},
		{ID: "eq2-epi", Title: "Entropy-power-inequality lower bound vs exact/empirical mutual information", Paper: "§3.1 eq. (2)", Run: Eq2EPI},
		{ID: "eq4-bound", Title: "Anantharam–Verdú bound vs empirical I(Xj;Zj) for Poisson source, Exp delay", Paper: "§3.2 eq. (4)", Run: Eq4Bound},
		{ID: "mm-inf", Title: "Buffer-occupancy distribution vs M/M/∞ and M/M/k/k analysis", Paper: "§4", Run: MMInf},
		{ID: "occupancy", Title: "Trunk buffer-occupancy time series under RCAD (telemetry sampler)", Paper: "§4", Run: Occupancy},
		{ID: "erlang", Title: "Simulated drop/preemption rate vs Erlang loss formula", Paper: "§4 eq. (5)", Run: Erlang},
		{ID: "abl-victim", Title: "RCAD victim-selection ablation", Paper: "§5 design choice", Run: AblVictim},
		{ID: "abl-dist", Title: "Delay-distribution ablation at equal mean", Paper: "§3.2 design choice", Run: AblDist},
		{ID: "abl-buffer", Title: "Privacy/latency/preemption vs buffer size k", Paper: "§4–§5 tradeoff", Run: AblBuffer},
		{ID: "abl-mu", Title: "Privacy vs buffer occupancy as 1/µ grows", Paper: "§3.2/§4 conflict", Run: AblMu},
		{ID: "abl-decomp", Title: "Delay decomposition across the routing path", Paper: "§3.3", Run: AblDecomp},
		{ID: "abl-mix", Title: "RCAD vs mix-network mechanisms (SG-mix, pool mix, timed mix)", Paper: "§6 related work", Run: AblMix},
		{ID: "abl-lattice", Title: "Lattice adversary vs delay budget (periodic sources leak their grid)", Paper: "§5.2 extension", Run: AblLattice},
		{ID: "sort-reorder", Title: "Arrival reordering under independent delays (sorted-process premise)", Paper: "§3.2", Run: SortReorder},
		{ID: "abl-linkloss", Title: "Delivery, ARQ work, and privacy under lossy links", Paper: "robustness extension", Run: AblLinkLoss},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q (known: %v)", id, IDs())
}

// IDs returns all experiment IDs in presentation order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// parallelFor runs f(i) for i in [0, n) on up to workers goroutines and
// returns the first error (by index order) if any.
func parallelFor(workers, n int, f func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// figure1Run executes one simulation of the paper's evaluation topology:
// four periodic sources with hop counts 15/22/9/11, Count packets each, a
// given buffering policy and interarrival time. It returns the result and
// the source IDs in S1…S4 order.
func figure1Run(p Params, policy network.PolicyKind, interarrival float64) (*network.Result, []packet.NodeID, error) {
	topo, sources, err := topology.Figure1()
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: building topology: %w", err)
	}
	proc, err := traffic.NewPeriodic(interarrival)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: traffic: %w", err)
	}
	var dist delay.Distribution
	if policy != network.PolicyForward {
		d, err := delay.NewExponential(p.MeanDelay)
		if err != nil {
			return nil, nil, fmt.Errorf("experiment: delay: %w", err)
		}
		dist = d
	}
	srcs := make([]network.Source, len(sources))
	for i, s := range sources {
		srcs[i] = network.Source{Node: s, Process: proc, Count: p.Packets}
	}
	res, err := network.RunCached(p.Engines, network.Config{
		Topology:          topo,
		Sources:           srcs,
		Policy:            policy,
		Delay:             dist,
		Capacity:          p.Capacity,
		TransmissionDelay: p.Tau,
		Seed:              p.Seed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: simulating %v at 1/λ=%v: %w", policy, interarrival, err)
	}
	return res, sources, nil
}

// figure1Paths returns each Figure-1 flow's buffering nodes (source through
// last relay, sink excluded), for the path-aware adversary. The topology is
// deterministic, so this matches any figure1Run's routing exactly.
func figure1Paths() (map[packet.NodeID][]packet.NodeID, error) {
	topo, sources, err := topology.Figure1()
	if err != nil {
		return nil, fmt.Errorf("experiment: building topology: %w", err)
	}
	routes, err := routing.BuildTree(topo)
	if err != nil {
		return nil, fmt.Errorf("experiment: routing: %w", err)
	}
	paths := make(map[packet.NodeID][]packet.NodeID, len(sources))
	for _, s := range sources {
		full, err := routes.Path(s)
		if err != nil {
			return nil, fmt.Errorf("experiment: path for %v: %w", s, err)
		}
		paths[s] = full[:len(full)-1] // drop the sink: it does not buffer
	}
	return paths, nil
}

// scoreFlow runs a fresh baseline adversary over a result and returns the
// MSE for the given flow. meanDelay is the per-hop buffering delay the
// adversary assumes (0 against a no-delay network).
func scoreFlow(p Params, res *network.Result, flow packet.NodeID, meanDelay float64) (float64, error) {
	est, err := adversary.NewBaseline(p.Tau, meanDelay)
	if err != nil {
		return 0, fmt.Errorf("experiment: adversary: %w", err)
	}
	perFlow, err := adversary.ScorePerFlow(est, res.Observations(), res.Truths())
	if err != nil {
		return 0, fmt.Errorf("experiment: scoring: %w", err)
	}
	m, ok := perFlow[flow]
	if !ok {
		return 0, fmt.Errorf("experiment: no deliveries for flow %v", flow)
	}
	return m.Value(), nil
}

// flowMSE extracts the given flow's MSE from a per-flow map, treating a
// missing flow as an error.
func flowMSE(perFlow map[packet.NodeID]*metrics.MSE, flow packet.NodeID) (float64, error) {
	m, ok := perFlow[flow]
	if !ok {
		return 0, fmt.Errorf("experiment: no deliveries for flow %v", flow)
	}
	return m.Value(), nil
}

// formatSweepLabel renders an interarrival label.
func formatSweepLabel(v float64) string {
	return fmt.Sprintf("%g", v)
}

// sortedNodeIDs returns the keys of a node-stat map in ascending order.
func sortedNodeIDs[V any](m map[packet.NodeID]V) []packet.NodeID {
	out := make([]packet.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
