package experiment

import (
	"fmt"
	"sort"

	"tempriv/internal/report"
	"tempriv/internal/rng"
)

// SortReorder validates the premise of §3.2's sorted-process argument: the
// application sequence number travels encrypted, so the adversary observes
// only the *sorted* arrival process Z̃ = Υ(Z) and cannot tell which arrival
// is which creation. Independent per-packet delays reorder arrivals; this
// experiment sweeps the mean delay 1/µ and reports:
//
//   - the probability that two consecutive packets of a Poisson(λ) source
//     arrive out of order, against its closed form. For Exp(µ) delays and
//     Exp(λ) interarrivals, P(swap) = E[½e^{−µ(Y₁−A)⁺}] = ½·λ/(λ+µ);
//   - the mean rank displacement |rank(arrival) − index(creation)| within
//     10-packet windows — how far the sorted process scrambles identity.
//
// As 1/µ grows past 1/λ the adversary loses not just each packet's timing
// but the packet-to-creation correspondence itself.
func SortReorder(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	lambda := 1 / p.Interarrivals[0] // 0.5 by default
	means := []float64{2, 5, 10, 30, 60, 120}
	const pairSamples = 400000
	const windows = 40000
	const windowSize = 10

	t := &report.Table{
		Title:     "§3.2: arrival reordering under independent per-packet delays",
		RowHeader: "1/µ",
		Columns:   []string{"swap-prob-sim", "swap-prob ½λ/(λ+µ)", "mean-rank-displacement"},
		Notes: []string{
			fmt.Sprintf("Poisson source λ=%g; exponential per-packet delays; windows of %d packets", lambda, windowSize),
			"swap-prob: two consecutive creations arrive out of order (closed form for Exp delays)",
			"displacement: mean |arrival rank − creation index| within a window (uniform shuffling would give ≈ windowSize/3)",
			"expected: both grow with 1/µ — the sorted process Z̃ scrambles packet identity (§3.2)",
			fmt.Sprintf("seed=%d", p.Seed),
		},
	}

	src := rng.New(p.Seed)
	for _, mean := range means {
		mu := 1 / mean
		sub := src.Split(fmt.Sprintf("sort/%g", mean))

		swaps := 0
		for i := 0; i < pairSamples; i++ {
			a := sub.ExponentialRate(lambda)
			y1 := sub.Exponential(mean)
			y2 := sub.Exponential(mean)
			if a+y2 < y1 {
				swaps++
			}
		}
		simSwap := float64(swaps) / pairSamples
		analytic := 0.5 * lambda / (lambda + mu)

		totalDisp := 0.0
		arrivals := make([]float64, windowSize)
		ranks := make([]int, windowSize)
		for w := 0; w < windows; w++ {
			at := 0.0
			for j := 0; j < windowSize; j++ {
				at += sub.ExponentialRate(lambda)
				arrivals[j] = at + sub.Exponential(mean)
			}
			for j := range ranks {
				ranks[j] = j
			}
			sort.Slice(ranks, func(a, b int) bool { return arrivals[ranks[a]] < arrivals[ranks[b]] })
			for rank, idx := range ranks {
				d := rank - idx
				if d < 0 {
					d = -d
				}
				totalDisp += float64(d)
			}
		}
		meanDisp := totalDisp / float64(windows*windowSize)

		t.AddRow(formatSweepLabel(mean), simSwap, analytic, meanDisp)
	}
	return t, nil
}
