package experiment

import (
	"fmt"

	"tempriv/internal/delay"
	"tempriv/internal/network"
	"tempriv/internal/report"
	"tempriv/internal/telemetry"
	"tempriv/internal/topology"
	"tempriv/internal/traffic"
)

// occupancyRows is the number of time points the occupancy series reports.
// Sampling covers the source-active window (periodic sources, so its length
// is deterministic), which keeps the table shape identical across seeds and
// makes the experiment replicable.
const occupancyRows = 48

// Occupancy records the §4 buffer-occupancy process N(t) as a time series:
// one Figure-1 simulation under RCAD at the first interarrival of the
// sweep, sampled by the telemetry sim-time sampler into a Memory emitter.
// Columns follow flow S3's trunk path node by node (the progressive-merge
// region whose occupancy §4 models as M/M/k/k), plus network-wide totals.
func Occupancy(p Params) (*report.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	ia := p.Interarrivals[0]

	topo, sources, err := topology.Figure1()
	if err != nil {
		return nil, fmt.Errorf("experiment: building topology: %w", err)
	}
	proc, err := traffic.NewPeriodic(ia)
	if err != nil {
		return nil, fmt.Errorf("experiment: traffic: %w", err)
	}
	dist, err := delay.NewExponential(p.MeanDelay)
	if err != nil {
		return nil, fmt.Errorf("experiment: delay: %w", err)
	}
	srcs := make([]network.Source, len(sources))
	for i, s := range sources {
		srcs[i] = network.Source{Node: s, Process: proc, Count: p.Packets}
	}

	// Sources emit periodically, so the active window [0, (Packets-1)·1/λ]
	// has deterministic length; sampling it in occupancyRows steps gives the
	// same row labels for every seed.
	window := ia * float64(p.Packets-1)
	if window <= 0 {
		return nil, fmt.Errorf("experiment: occupancy needs >= 2 packets per source, got %d", p.Packets)
	}
	every := window / occupancyRows

	mem := &telemetry.Memory{}
	res, err := network.RunCached(p.Engines, network.Config{
		Topology:          topo,
		Sources:           srcs,
		Policy:            network.PolicyRCAD,
		Delay:             dist,
		Capacity:          p.Capacity,
		TransmissionDelay: p.Tau,
		Seed:              p.Seed,
		Telemetry: &telemetry.Config{
			SampleEvery: every,
			Emitter:     mem,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: simulating occupancy series: %w", err)
	}

	// Trunk nodes in source→sink order: flow S3 (9 hops over an 8-hop
	// trunk) attaches directly to the trunk head, so its path minus the
	// source and sink is exactly the trunk.
	paths, err := figure1Paths()
	if err != nil {
		return nil, err
	}
	trunk := paths[sources[2]][1:]
	if len(trunk) != topology.Figure1TrunkLen {
		return nil, fmt.Errorf("experiment: trunk has %d nodes, want %d", len(trunk), topology.Figure1TrunkLen)
	}

	t := &report.Table{
		Title:     "Occupancy time series: trunk buffering under RCAD (§4)",
		RowHeader: "t",
		Notes: []string{
			fmt.Sprintf("one Figure-1 run, RCAD, 1/λ=%g, 1/µ=%g, k=%d, τ=%g, seed=%d", ia, p.MeanDelay, p.Capacity, p.Tau, p.Seed),
			fmt.Sprintf("telemetry sampler, interval %g time units over the source-active window [0, %g]", every, window),
			"trunk columns run source→sink along flow S3's shared path; §4 models each as M/M/k/k",
		},
	}
	for i := range trunk {
		t.Columns = append(t.Columns, fmt.Sprintf("trunk%d", i+1))
	}
	t.Columns = append(t.Columns, "buffered-total", "in-flight", "delivered")

	rows := 0
	for _, s := range mem.Samples() {
		if s.At > window+1e-9 || rows == occupancyRows {
			break
		}
		rows++
		values := make([]float64, 0, len(trunk)+3)
		for _, id := range trunk {
			values = append(values, float64(s.Occupancy[id]))
		}
		values = append(values, float64(s.Buffered), float64(s.InFlight), float64(s.Delivered))
		t.AddRow(formatSweepLabel(s.At), values...)
	}
	if rows == 0 {
		return nil, fmt.Errorf("experiment: occupancy sampler produced no samples (duration %g, interval %g)", res.Duration, every)
	}
	return t, nil
}
