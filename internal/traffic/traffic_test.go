package traffic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/rng"
)

func TestPeriodicConstantIntervals(t *testing.T) {
	p, err := NewPeriodic(2.5)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		if got := p.Next(src); got != 2.5 {
			t.Fatalf("interval %d = %v, want 2.5", i, got)
		}
	}
	if r := p.Rate(); math.Abs(r-0.4) > 1e-12 {
		t.Fatalf("Rate = %v, want 0.4", r)
	}
}

func TestPeriodicValidation(t *testing.T) {
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPeriodic(v); err == nil {
			t.Fatalf("NewPeriodic(%v) accepted", v)
		}
	}
}

func TestPoissonInterarrivalMoments(t *testing.T) {
	p, err := NewPoisson(0.5)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := p.Next(src)
		if v < 0 {
			t.Fatalf("negative interarrival %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("poisson(0.5) interarrival mean = %v, want ≈ 2", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("poisson(0.5) interarrival variance = %v, want ≈ 4", variance)
	}
	if p.Rate() != 0.5 {
		t.Fatalf("Rate = %v", p.Rate())
	}
}

func TestPoissonValidation(t *testing.T) {
	for _, v := range []float64{0, -2, math.NaN(), math.Inf(1)} {
		if _, err := NewPoisson(v); err == nil {
			t.Fatalf("NewPoisson(%v) accepted", v)
		}
	}
}

func TestOnOffLongRunRate(t *testing.T) {
	// onRate 2, duty cycle 10/(10+30) = 0.25 → long-run rate 0.5.
	p, err := NewOnOff(2, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Rate(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Rate = %v, want 0.5", got)
	}
	src := rng.New(11)
	const n = 100000
	total := 0.0
	for i := 0; i < n; i++ {
		v := p.Next(src)
		if v < 0 {
			t.Fatalf("negative interarrival %v", v)
		}
		total += v
	}
	empirical := n / total
	if math.Abs(empirical-0.5) > 0.05 {
		t.Fatalf("empirical rate = %v, want ≈ 0.5", empirical)
	}
}

func TestOnOffBurstiness(t *testing.T) {
	// A bursty process has interarrival variance far above a Poisson of the
	// same rate (coefficient of variation > 1).
	p, err := NewOnOff(5, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(13)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := p.Next(src)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	cv2 := variance / (mean * mean)
	if cv2 < 1.5 {
		t.Fatalf("on-off squared CV = %v, want > 1.5 (bursty)", cv2)
	}
}

func TestOnOffValidation(t *testing.T) {
	if _, err := NewOnOff(0, 1, 1); err == nil {
		t.Fatal("zero onRate accepted")
	}
	if _, err := NewOnOff(1, 0, 1); err == nil {
		t.Fatal("zero onMean accepted")
	}
	if _, err := NewOnOff(1, 1, math.Inf(1)); err == nil {
		t.Fatal("infinite offMean accepted")
	}
}

func TestTraceReplaysAndLoops(t *testing.T) {
	p, err := NewTrace([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	want := []float64{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if got := p.Next(src); got != w {
			t.Fatalf("trace step %d = %v, want %v", i, got, w)
		}
	}
}

func TestTraceRate(t *testing.T) {
	p, err := NewTrace([]float64{1, 3}) // mean interval 2 → rate 0.5
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Rate(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("trace rate = %v, want 0.5", got)
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("empty trace: %v, want ErrEmptyTrace", err)
	}
	if _, err := NewTrace([]float64{1, 0}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewTrace([]float64{1, -2}); err == nil {
		t.Fatal("negative interval accepted")
	}
}

func TestTraceCopiesInput(t *testing.T) {
	intervals := []float64{1, 2}
	p, err := NewTrace(intervals)
	if err != nil {
		t.Fatal(err)
	}
	intervals[0] = 99
	src := rng.New(1)
	if got := p.Next(src); got != 1 {
		t.Fatalf("trace exposed caller mutation: got %v, want 1", got)
	}
}

// Property: every process emits non-negative finite interarrivals and a
// positive rate.
func TestProcessInvariantProperty(t *testing.T) {
	src := rng.New(21)
	f := func(raw uint16, which uint8) bool {
		param := 0.01 + float64(raw)/65535*50
		var p Process
		var err error
		switch which % 3 {
		case 0:
			p, err = NewPeriodic(param)
		case 1:
			p, err = NewPoisson(1 / param)
		case 2:
			p, err = NewOnOff(1/param, param, param)
		}
		if err != nil {
			return false
		}
		if p.Rate() <= 0 {
			return false
		}
		for i := 0; i < 5; i++ {
			v := p.Next(src)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
