// Package traffic models the packet-creation processes of sensor sources.
//
// The paper uses two creation models: Poisson processes for the analytic
// sections (§3.2, §4) and a "realistic sensor traffic model where packets
// are periodically transmitted by each source" for the evaluation (§5.2).
// Both are provided here, together with an on-off bursty model (assets move
// through and out of sensing range) and trace playback for replaying
// recorded interarrival sequences.
//
// A Process emits successive interarrival times; the network simulator turns
// them into packet-creation events.
package traffic

import (
	"errors"
	"fmt"
	"math"

	"tempriv/internal/rng"
)

// Process generates successive packet interarrival times for one source.
// Implementations may be stateful; each source owns its own Process value.
type Process interface {
	// Next returns the time until the next packet creation, drawing any
	// randomness from src. Returned values are non-negative.
	Next(src *rng.Source) float64
	// Rate returns the long-run average packet rate λ (packets per time
	// unit), used by the Erlang-loss planner and the adaptive adversary.
	Rate() float64
	// Name returns a short identifier used in reports.
	Name() string
}

// Periodic creates packets at fixed intervals — the paper's evaluation
// traffic (§5.2: "Each source generated … packets at periodic intervals with
// an inter-arrival time of 1/λ time units").
type Periodic struct {
	interval float64
}

var _ Process = Periodic{}

// NewPeriodic returns a periodic process with the given interarrival time.
// It returns an error if interval <= 0.
func NewPeriodic(interval float64) (Periodic, error) {
	if interval <= 0 || math.IsNaN(interval) || math.IsInf(interval, 0) {
		return Periodic{}, fmt.Errorf("traffic: periodic interval must be positive and finite, got %v", interval)
	}
	return Periodic{interval: interval}, nil
}

// Next implements Process.
func (p Periodic) Next(*rng.Source) float64 { return p.interval }

// Rate implements Process.
func (p Periodic) Rate() float64 { return 1 / p.interval }

// Name implements Process.
func (p Periodic) Name() string { return "periodic" }

// Poisson creates packets as a Poisson process: exponential interarrivals
// with mean 1/λ. Used by the analytic validations (§3.2, §4).
type Poisson struct {
	rate float64
}

var _ Process = Poisson{}

// NewPoisson returns a Poisson process with rate λ. It returns an error if
// rate <= 0.
func NewPoisson(rate float64) (Poisson, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return Poisson{}, fmt.Errorf("traffic: poisson rate must be positive and finite, got %v", rate)
	}
	return Poisson{rate: rate}, nil
}

// Next implements Process.
func (p Poisson) Next(src *rng.Source) float64 { return src.ExponentialRate(p.rate) }

// Rate implements Process.
func (p Poisson) Rate() float64 { return p.rate }

// Name implements Process.
func (p Poisson) Name() string { return "poisson" }

// OnOff is a two-state bursty source: during an on-period (exponential with
// mean onMean) packets arrive as a Poisson process with rate onRate; between
// bursts the source is silent for an exponential off-period (mean offMean).
// This approximates an asset moving through and out of a sensor's range.
type OnOff struct {
	onRate  float64
	onMean  float64
	offMean float64

	remainingOn float64
	started     bool
}

var _ Process = (*OnOff)(nil)

// NewOnOff returns a bursty on-off process. All parameters must be positive.
func NewOnOff(onRate, onMean, offMean float64) (*OnOff, error) {
	for name, v := range map[string]float64{"onRate": onRate, "onMean": onMean, "offMean": offMean} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("traffic: on-off %s must be positive and finite, got %v", name, v)
		}
	}
	return &OnOff{onRate: onRate, onMean: onMean, offMean: offMean}, nil
}

// Next implements Process. The first call begins with an off-period (the
// asset has not yet arrived).
func (p *OnOff) Next(src *rng.Source) float64 {
	gap := 0.0
	if !p.started {
		p.started = true
		gap += src.Exponential(p.offMean)
		p.remainingOn = src.Exponential(p.onMean)
	}
	for {
		step := src.ExponentialRate(p.onRate)
		if step <= p.remainingOn {
			p.remainingOn -= step
			return gap + step
		}
		// Burst ended before the next packet: advance through the rest of
		// the on-period and a full off-period, then start a new burst.
		gap += p.remainingOn + src.Exponential(p.offMean)
		p.remainingOn = src.Exponential(p.onMean)
	}
}

// Rate implements Process: the long-run rate is onRate scaled by the duty
// cycle.
func (p *OnOff) Rate() float64 {
	return p.onRate * p.onMean / (p.onMean + p.offMean)
}

// Name implements Process.
func (p *OnOff) Name() string { return "onoff" }

// ErrEmptyTrace is returned when constructing a trace with no intervals.
var ErrEmptyTrace = errors.New("traffic: empty trace")

// Trace replays a recorded sequence of interarrival times, looping when the
// sequence is exhausted.
type Trace struct {
	intervals []float64
	pos       int
	rate      float64
}

var _ Process = (*Trace)(nil)

// NewTrace returns a trace process replaying the given interarrival times.
// Intervals must be positive; the slice is copied.
func NewTrace(intervals []float64) (*Trace, error) {
	if len(intervals) == 0 {
		return nil, ErrEmptyTrace
	}
	total := 0.0
	for i, v := range intervals {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("traffic: trace interval %d must be positive and finite, got %v", i, v)
		}
		total += v
	}
	cp := make([]float64, len(intervals))
	copy(cp, intervals)
	return &Trace{intervals: cp, rate: float64(len(intervals)) / total}, nil
}

// Next implements Process.
func (p *Trace) Next(*rng.Source) float64 {
	v := p.intervals[p.pos]
	p.pos = (p.pos + 1) % len(p.intervals)
	return v
}

// Rate implements Process.
func (p *Trace) Rate() float64 { return p.rate }

// Name implements Process.
func (p *Trace) Name() string { return "trace" }
