package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"tempriv/internal/adversary"
	"tempriv/internal/buffer"
	"tempriv/internal/delay"
	"tempriv/internal/experiment"
	"tempriv/internal/metrics"
	"tempriv/internal/network"
	"tempriv/internal/obs"
	"tempriv/internal/packet"
	"tempriv/internal/report"
	"tempriv/internal/routing"
	"tempriv/internal/topology"
	"tempriv/internal/traffic"
)

// ReplicateSink is the engine's streaming seam: per-replicate tables are
// emitted through it in replicate-index order as they complete, and Have
// lets a resumed run skip replicates that already persisted (see
// internal/resultstream and experiment.ReplicateSink, which this aliases).
type ReplicateSink = experiment.ReplicateSink

// Options tune how a scenario executes without affecting its result bytes.
type Options struct {
	// Progress, when set, receives coarse stage updates ("running",
	// "replicate 3/8", "rendering"). It may be called from worker
	// goroutines and must be safe for concurrent use.
	Progress func(stage, message string)
	// ReplicateWorkers bounds replication parallelism (default 1,
	// sequential). The reduction is order-fixed, so the output is
	// byte-identical for every worker count.
	ReplicateWorkers int
	// SweepWorkers bounds each run's internal sweep parallelism
	// (0 = GOMAXPROCS). Execution-only: it never affects result bytes and
	// never enters the fingerprint.
	SweepWorkers int
	// Sink, when set, streams every replicate's table out of the engine as
	// it completes and answers resume queries (skip replicates the sink
	// already holds). Execution-only: equal specs produce byte-identical
	// outcomes with or without a sink, resumed or not — the differential
	// tests hold the engine to that.
	Sink ReplicateSink
	// DisableEngineReuse makes every simulation build its engine from
	// scratch instead of reusing pooled arena-backed engines across the
	// scenario's runs and replicates. Execution-only — reuse never affects
	// result bytes (the differential tests hold it to that); the knob
	// exists for debugging and for those tests.
	DisableEngineReuse bool
}

func (o Options) progress(stage, message string) {
	if o.Progress != nil {
		o.Progress(stage, message)
	}
}

// Manifest is the deterministic provenance record stored (and served)
// alongside a scenario's result tables. Every field is a pure function of
// the spec and the producing toolchain, so cache hits replay it
// byte-identically.
type Manifest struct {
	// SpecFingerprint is the scenario's content address (Spec.Fingerprint).
	SpecFingerprint string `json:"spec_fingerprint"`
	// Kind is "experiment" or "simulation".
	Kind string `json:"kind"`
	// Label is the experiment ID or topology/policy summary.
	Label string `json:"label"`
	// Seed is the base RNG seed (replicates use seed..seed+n-1).
	Seed uint64 `json:"seed"`
	// Replicates is the across-seed averaging count (1 = single run).
	Replicates int `json:"replicates"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
}

// Outcome is one executed scenario: the result table plus its two rendered
// byte forms (exactly what the result cache stores and the HTTP result
// endpoint serves) and the provenance manifest.
type Outcome struct {
	// Table is the in-memory result.
	Table *report.Table
	// TableText is Table rendered as aligned ASCII.
	TableText []byte
	// TableCSV is Table rendered as CSV.
	TableCSV []byte
	// Manifest records provenance; ManifestJSON is its stable encoding.
	Manifest Manifest
}

// ManifestJSON returns the manifest as deterministic indented JSON.
func (o *Outcome) ManifestJSON() ([]byte, error) {
	b, err := json.MarshalIndent(o.Manifest, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// Run executes a scenario to completion. The spec is normalized first, so
// callers may pass raw parsed specs. ctx cancels between replicates (a
// single replicate, once started, runs to completion); a canceled run
// returns ctx's error. Equal specs produce byte-identical outcomes — the
// property the result cache's correctness rests on.
func Run(ctx context.Context, spec Spec, opts Options) (*Outcome, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return nil, err
	}

	var e experiment.Experiment
	var seed uint64
	var replicates int
	switch spec.Kind() {
	case "experiment":
		reg, err := experiment.ByID(spec.Experiment.ID)
		if err != nil {
			return nil, invalidf("%v", err)
		}
		e = reg
		seed = spec.Experiment.Seed
		replicates = spec.Experiment.Replicates
	default:
		e = simExperiment(spec.Simulation)
		seed = spec.Simulation.Seed
		replicates = spec.Simulation.Replicates
	}

	p := paramsFor(spec)
	if opts.SweepWorkers > 0 {
		p.Workers = opts.SweepWorkers
	}
	if !opts.DisableEngineReuse {
		// One cache for the whole scenario: sweep points inside a single
		// replicate share engines too (the cache's checkout discipline makes
		// it safe under the sweep's parallelFor workers).
		p.Engines = network.NewEngineCache()
	}
	opts.progress("running", fmt.Sprintf("%s (%d replicate(s), seed %d)", spec.Label(), replicates, seed))

	// The whole execution runs under an "engine" span; each replicate gets
	// a child span below. Both are free when the context is untraced (the
	// rcadsim/sweep paths, and temprivd with tracing off) — StartSpan on an
	// untraced context allocates nothing.
	ctx, engineSpan := obs.StartSpan(ctx, "engine")
	engineSpan.AnnotateInt("replicates", int64(replicates))
	defer engineSpan.End()

	// Wrap the experiment so each replicate checks for cancellation before
	// starting, runs under its own trace span, and reports progress as it
	// completes. Replicates may run on parallel workers; the trace record
	// is lock-guarded.
	var done atomic.Int64
	inner := e.Run
	e.Run = func(q experiment.Params) (*report.Table, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, repSpan := obs.StartSpan(ctx, "replicate")
		repSpan.AnnotateInt("rep", int64(q.Seed-seed))
		tab, err := inner(q)
		repSpan.EndErr(err)
		if err == nil && replicates > 1 {
			opts.progress("replicate", fmt.Sprintf("%d/%d", done.Add(1), replicates))
		}
		return tab, err
	}

	var tab *report.Table
	if replicates > 1 {
		workers := opts.ReplicateWorkers
		if workers < 1 {
			workers = 1
		}
		tab, err = experiment.ReplicateRun(e, p, replicates, experiment.ReplicateConfig{
			Workers:      workers,
			Sink:         opts.Sink,
			FreshEngines: opts.DisableEngineReuse,
		})
	} else if opts.Sink != nil {
		// Single-replicate scenarios stream through the same seam: a
		// persisted chunk answers the whole run, a fresh run persists one.
		if tab = opts.Sink.Have(0); tab != nil {
			err = opts.Sink.Emit(0, false, tab)
		} else if tab, err = e.Run(p); err == nil {
			err = opts.Sink.Emit(0, true, tab)
		}
	} else {
		tab, err = e.Run(p)
	}
	if err != nil {
		return nil, err
	}

	opts.progress("rendering", "result tables")
	_, renderSpan := obs.StartSpan(ctx, "render")
	var text, csv bytes.Buffer
	if err := tab.Render(&text); err != nil {
		renderSpan.EndErr(err)
		return nil, fmt.Errorf("scenario: rendering table: %w", err)
	}
	if err := tab.RenderCSV(&csv); err != nil {
		renderSpan.EndErr(err)
		return nil, fmt.Errorf("scenario: rendering CSV: %w", err)
	}
	renderSpan.End()
	return &Outcome{
		Table:     tab,
		TableText: text.Bytes(),
		TableCSV:  csv.Bytes(),
		Manifest: Manifest{
			SpecFingerprint: fp,
			Kind:            spec.Kind(),
			Label:           spec.Label(),
			Seed:            seed,
			Replicates:      replicates,
			GoVersion:       runtime.Version(),
		},
	}, nil
}

// paramsFor maps a normalized spec onto experiment.Params. For simulation
// scenarios only the seed matters (everything else lives in the spec); for
// experiment scenarios the spec's knobs are the Params.
func paramsFor(spec Spec) experiment.Params {
	p := experiment.Defaults()
	if e := spec.Experiment; e != nil {
		p.Seed = e.Seed
		p.Packets = e.Packets
		p.Interarrivals = append([]float64(nil), e.Interarrivals...)
		p.MeanDelay = e.MeanDelay
		p.Capacity = e.Capacity
		p.Tau = e.Tau
		p.Threshold = e.Threshold
	} else {
		p.Seed = spec.Simulation.Seed
	}
	return p
}

// simExperiment adapts a SimulationSpec into an ad-hoc Experiment whose
// table shape depends only on the spec — the contract replication needs.
// Each row is one source flow; the columns mirror rcadsim's report.
func simExperiment(m *SimulationSpec) experiment.Experiment {
	title := fmt.Sprintf("Scenario: %s topology, %s buffering, %s traffic, %s adversary",
		m.Topology.Kind, m.Policy, m.Traffic.Kind, m.Adversary)
	return experiment.Experiment{
		ID:    "scenario-sim",
		Title: title,
		Paper: "scenario",
		Run: func(p experiment.Params) (*report.Table, error) {
			return runSimulation(m, p.Seed, title, p.Engines)
		},
	}
}

// runSimulation executes one seed of a simulation scenario and tabulates
// per-flow delivery, latency and adversary-MSE results.
func runSimulation(m *SimulationSpec, seed uint64, title string, engines *network.EngineCache) (*report.Table, error) {
	topo, sources, err := buildTopology(m.Topology)
	if err != nil {
		return nil, err
	}
	proc, err := buildTraffic(m.Traffic)
	if err != nil {
		return nil, err
	}
	cfg := network.Config{
		Topology:          topo,
		Capacity:          m.Capacity,
		TransmissionDelay: m.Tau,
		Seed:              seed,
		Seal:              m.Seal,
	}
	switch m.Policy {
	case "no-delay":
		cfg.Policy = network.PolicyForward
	case "delay-unlimited":
		cfg.Policy = network.PolicyUnlimited
	case "delay-droptail":
		cfg.Policy = network.PolicyDropTail
	case "rcad":
		cfg.Policy = network.PolicyRCAD
	default:
		return nil, invalidf("simulation.policy %q unknown", m.Policy)
	}
	if m.Delay != nil {
		if m.Delay.Dist == "pareto" {
			cfg.Delay, err = delay.NewPareto(m.Delay.Mean, m.Delay.Shape)
		} else {
			cfg.Delay, err = delay.ByName(m.Delay.Dist, m.Delay.Mean)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: delay: %w", err)
		}
	}
	cfg.Victim, err = buffer.SelectorByName(m.Victim)
	if err != nil {
		return nil, fmt.Errorf("scenario: victim: %w", err)
	}
	if c := m.Channel; c != nil {
		cfg.Channel = &network.ChannelConfig{
			LossP:        c.LossP,
			Burst:        c.Burst,
			BurstLossP:   c.BurstLossP,
			MeanGoodRun:  c.MeanGoodRun,
			MeanBurstLen: c.MeanBurstLen,
			AckLossP:     c.AckLossP,
		}
	}
	if a := m.ARQ; a != nil {
		cfg.ARQ = &network.ARQConfig{MaxRetries: a.MaxRetries, Timeout: a.Timeout, Backoff: a.Backoff}
	}
	for _, s := range sources {
		cfg.Sources = append(cfg.Sources, network.Source{Node: s, Process: proc, Count: m.Packets})
	}

	res, err := network.RunCached(engines, cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: simulating: %w", err)
	}

	est, err := buildAdversary(m, topo, cfg.Policy)
	if err != nil {
		return nil, err
	}
	perFlow, err := adversary.ScorePerFlow(est, res.Observations(), res.Truths())
	if err != nil {
		return nil, fmt.Errorf("scenario: scoring adversary: %w", err)
	}

	tab := &report.Table{
		Title:     title,
		RowHeader: "flow",
		Columns:   []string{"hops", "created", "delivered", "dropped", "lat-mean", "lat-p95", "adv-MSE"},
	}
	for i, s := range sources {
		f := res.Flows[s]
		mse := math.NaN()
		if mm, ok := perFlow[s]; ok {
			mse = mm.Value()
		}
		var lat metrics.LatencyReport
		if f != nil {
			lat = f.Latency
			tab.AddRow(fmt.Sprintf("S%d", i+1),
				float64(f.HopCount), float64(f.Created), float64(f.Delivered),
				float64(f.Dropped()), lat.Mean, lat.P95, mse)
		} else {
			tab.AddRow(fmt.Sprintf("S%d", i+1),
				math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), mse)
		}
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("delivery ratio %.6f, %d events, %d drops+preemptions at buffers",
			res.DeliveryRatio(), res.Events, totalBufferLosses(res)))
	return tab, nil
}

func totalBufferLosses(res *network.Result) uint64 {
	var n uint64
	for _, ns := range res.Nodes {
		n += ns.Drops + ns.Preemptions
	}
	return n
}

func buildTopology(t TopologySpec) (*topology.Topology, []packet.NodeID, error) {
	switch t.Kind {
	case "figure1":
		topo, sources, err := topology.Figure1()
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: topology: %w", err)
		}
		return topo, sources, nil
	case "line":
		topo, err := topology.Line(t.Hops)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: topology: %w", err)
		}
		return topo, topo.Sources(), nil
	case "grid":
		topo, err := topology.Grid(t.Width, t.Height)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: topology: %w", err)
		}
		far := topology.GridID(t.Width, t.Width-1, t.Height-1)
		if err := topo.MarkSource(far); err != nil {
			return nil, nil, fmt.Errorf("scenario: topology: %w", err)
		}
		return topo, topo.Sources(), nil
	default:
		return nil, nil, invalidf("topology.kind %q unknown", t.Kind)
	}
}

func buildTraffic(t TrafficSpec) (traffic.Process, error) {
	switch t.Kind {
	case "periodic":
		return traffic.NewPeriodic(t.Interval)
	case "poisson":
		return traffic.NewPoisson(t.Rate)
	case "onoff":
		return traffic.NewOnOff(t.Rate, t.OnMean, t.OffMean)
	default:
		return nil, invalidf("traffic.kind %q unknown", t.Kind)
	}
}

func buildAdversary(m *SimulationSpec, topo *topology.Topology, policy network.PolicyKind) (adversary.Estimator, error) {
	known := 0.0
	if policy != network.PolicyForward && m.Delay != nil {
		known = m.Delay.Mean
	}
	if known == 0 {
		// Against a non-delaying network every adversary degenerates to the
		// baseline with zero assumed buffering delay, as in rcadsim.
		return adversary.NewBaseline(m.Tau, 0)
	}
	switch m.Adversary {
	case "baseline":
		return adversary.NewBaseline(m.Tau, known)
	case "adaptive":
		return adversary.NewAdaptive(m.Tau, known, m.Capacity, m.Threshold)
	case "path-aware":
		routes, err := routing.BuildTree(topo)
		if err != nil {
			return nil, fmt.Errorf("scenario: routing: %w", err)
		}
		paths := make(map[packet.NodeID][]packet.NodeID)
		for _, s := range topo.Sources() {
			full, err := routes.Path(s)
			if err != nil {
				return nil, fmt.Errorf("scenario: path for %v: %w", s, err)
			}
			paths[s] = full[:len(full)-1]
		}
		return adversary.NewPathAware(m.Tau, known, m.Capacity, m.Threshold, paths)
	default:
		return nil, invalidf("simulation.adversary %q unknown", m.Adversary)
	}
}
