package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func validExperimentJSON() []byte {
	return []byte(`{"version":1,"experiment":{"id":"eq2-epi","packets":50,"interarrivals":[4]}}`)
}

func validSimulationJSON() []byte {
	return []byte(`{"version":1,"simulation":{"topology":{"kind":"line","hops":3},"packets":30}}`)
}

func TestParseFillsDefaults(t *testing.T) {
	s, err := Parse(validSimulationJSON())
	if err != nil {
		t.Fatal(err)
	}
	m := s.Simulation
	if m.Policy != "rcad" || m.Victim != "shortest-remaining" || m.Adversary != "baseline" {
		t.Fatalf("defaults not filled: %+v", m)
	}
	if m.Delay == nil || m.Delay.Dist != "exponential" || m.Delay.Mean != 30 {
		t.Fatalf("delay defaults not filled: %+v", m.Delay)
	}
	if m.Capacity != 10 || m.Tau != 1 || m.Seed != 1 || m.Replicates != 1 {
		t.Fatalf("numeric defaults not filled: %+v", m)
	}
	if m.Traffic.Kind != "periodic" || m.Traffic.Interval != 2 {
		t.Fatalf("traffic defaults not filled: %+v", m.Traffic)
	}
}

func TestFingerprintCanonicalization(t *testing.T) {
	implicit, err := Parse([]byte(`{"version":1,"experiment":{"id":"fig2a"}}`))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Parse([]byte(`{"version":1,"experiment":{"id":"fig2a","seed":1,"packets":1000,
		"interarrivals":[2,4,6,8,10,12,14,16,18,20],"mean_delay":30,"capacity":10,
		"tau":1,"threshold":0.1,"replicates":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := implicit.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := explicit.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("implicit and explicit defaults fingerprint differently: %s vs %s", fp1, fp2)
	}
	if len(fp1) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp1)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base, err := Parse(validSimulationJSON())
	if err != nil {
		t.Fatal(err)
	}
	baseFP, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(*Spec){
		"seed":     func(s *Spec) { s.Simulation.Seed = 2 },
		"packets":  func(s *Spec) { s.Simulation.Packets = 31 },
		"capacity": func(s *Spec) { s.Simulation.Capacity = 11 },
		"policy":   func(s *Spec) { s.Simulation.Policy = "delay-unlimited" },
		"delay":    func(s *Spec) { s.Simulation.Delay = &DelaySpec{Mean: 31} },
		"traffic":  func(s *Spec) { s.Simulation.Traffic.Interval = 3 },
	}
	for name, mutate := range variants {
		v, err := Parse(validSimulationJSON())
		if err != nil {
			t.Fatal(err)
		}
		mutate(&v)
		fp, err := v.Fingerprint()
		if err != nil {
			t.Fatalf("%s variant: %v", name, err)
		}
		if fp == baseFP {
			t.Fatalf("changing %s did not change the fingerprint", name)
		}
	}

	// The name label is excluded: renaming must not invalidate cache keys.
	named := base
	named.Name = "my scenario"
	fp, err := named.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != baseFP {
		t.Fatal("name changed the fingerprint")
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string]string{
		"unknown version":     `{"version":99,"experiment":{"id":"fig2a"}}`,
		"missing version":     `{"experiment":{"id":"fig2a"}}`,
		"no kind":             `{"version":1}`,
		"both kinds":          `{"version":1,"experiment":{"id":"fig2a"},"simulation":{"topology":{"kind":"figure1"}}}`,
		"unknown field":       `{"version":1,"bogus":true,"experiment":{"id":"fig2a"}}`,
		"unknown experiment":  `{"version":1,"experiment":{"id":"fig99"}}`,
		"trailing data":       `{"version":1,"experiment":{"id":"fig2a"}} {"x":1}`,
		"negative packets":    `{"version":1,"experiment":{"id":"fig2a","packets":-5}}`,
		"huge packets":        `{"version":1,"experiment":{"id":"fig2a","packets":2000000}}`,
		"zero interarrival":   `{"version":1,"experiment":{"id":"fig2a","interarrivals":[2,0]}}`,
		"negative mean delay": `{"version":1,"experiment":{"id":"fig2a","mean_delay":-1}}`,
		"threshold too big":   `{"version":1,"experiment":{"id":"fig2a","threshold":1.5}}`,
		"replicates too big":  `{"version":1,"experiment":{"id":"fig2a","replicates":1000}}`,
		"no topology":         `{"version":1,"simulation":{"packets":10}}`,
		"bad topology kind":   `{"version":1,"simulation":{"topology":{"kind":"torus"}}}`,
		"line with width":     `{"version":1,"simulation":{"topology":{"kind":"line","width":4}}}`,
		"figure1 with hops":   `{"version":1,"simulation":{"topology":{"kind":"figure1","hops":4}}}`,
		"bad policy":          `{"version":1,"simulation":{"topology":{"kind":"figure1"},"policy":"teleport"}}`,
		"delay with no-delay": `{"version":1,"simulation":{"topology":{"kind":"figure1"},"policy":"no-delay","delay":{"mean":5}}}`,
		"bad victim":          `{"version":1,"simulation":{"topology":{"kind":"figure1"},"victim":"newest"}}`,
		"bad adversary":       `{"version":1,"simulation":{"topology":{"kind":"figure1"},"adversary":"psychic"}}`,
		"loss above one":      `{"version":1,"simulation":{"topology":{"kind":"figure1"},"channel":{"loss_p":1.5}}}`,
		"ack loss sans arq":   `{"version":1,"simulation":{"topology":{"kind":"figure1"},"channel":{"loss_p":0.1,"ack_loss_p":0.1}}}`,
		"pareto bad shape":    `{"version":1,"simulation":{"topology":{"kind":"figure1"},"delay":{"dist":"pareto","shape":0.5}}}`,
		"poisson no rate":     `{"version":1,"simulation":{"topology":{"kind":"figure1"},"traffic":{"kind":"poisson"}}}`,
		"periodic with rate":  `{"version":1,"simulation":{"topology":{"kind":"figure1"},"traffic":{"kind":"periodic","rate":3}}}`,
		"not json":            `hello`,
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: accepted %s", name, doc)
		} else if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error not tagged ErrInvalid: %v", name, err)
		}
	}
}

func TestRunExperimentScenarioDeterministic(t *testing.T) {
	spec, err := Parse(validExperimentJSON())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.TableText, b.TableText) || !bytes.Equal(a.TableCSV, b.TableCSV) {
		t.Fatal("equal specs produced different result bytes")
	}
	if len(a.TableText) == 0 || len(a.TableCSV) == 0 {
		t.Fatal("empty rendering")
	}
	if a.Manifest.Kind != "experiment" || a.Manifest.Label != "eq2-epi" || a.Manifest.SpecFingerprint == "" {
		t.Fatalf("manifest incomplete: %+v", a.Manifest)
	}
	ma, err := a.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ma, mb) {
		t.Fatal("manifests not byte-identical across replays")
	}
}

func TestRunSimulationScenario(t *testing.T) {
	spec, err := Parse(validSimulationJSON())
	if err != nil {
		t.Fatal(err)
	}
	var stages []string
	out, err := Run(context.Background(), spec, Options{
		Progress: func(stage, _ string) { stages = append(stages, stage) },
	})
	if err != nil {
		t.Fatal(err)
	}
	text := string(out.TableText)
	if !strings.Contains(text, "S1") || !strings.Contains(text, "adv-MSE") {
		t.Fatalf("unexpected table:\n%s", text)
	}
	if len(stages) == 0 {
		t.Fatal("no progress reported")
	}
	// The same spec replays byte-identically.
	again, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.TableText, again.TableText) {
		t.Fatal("simulation scenario not deterministic")
	}
	// A different seed produces a different result.
	seeded := spec
	sim := *spec.Simulation
	sim.Seed = 7
	seeded.Simulation = &sim
	other, err := Run(context.Background(), seeded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out.TableText, other.TableText) {
		t.Fatal("seed change did not change the result")
	}
}

func TestRunSimulationReplicates(t *testing.T) {
	spec, err := Parse([]byte(`{"version":1,"simulation":{
		"topology":{"kind":"line","hops":3},"packets":20,"replicates":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(seq.Table.Title, "mean of 3 seeds") {
		t.Fatalf("replicated table not aggregated: %q", seq.Table.Title)
	}
	// Parallel replication is byte-identical to sequential.
	par, err := Run(context.Background(), spec, Options{ReplicateWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.TableText, par.TableText) {
		t.Fatal("parallel replication changed result bytes")
	}
}

func TestRunLinkLossAndARQScenario(t *testing.T) {
	spec, err := Parse([]byte(`{"version":1,"simulation":{
		"topology":{"kind":"line","hops":4},"packets":30,
		"channel":{"loss_p":0.1},"arq":{"max_retries":2}}}`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out.TableText), "delivery ratio") {
		t.Fatalf("missing delivery note:\n%s", out.TableText)
	}
}

func TestRunCanceledContext(t *testing.T) {
	spec, err := Parse(validSimulationJSON())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, spec, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestCanonicalJSONRoundTrips(t *testing.T) {
	spec, err := Parse(validExperimentJSON())
	if err != nil {
		t.Fatal(err)
	}
	canon, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(canon)
	if err != nil {
		t.Fatalf("canonical form does not reparse: %v\n%s", err, canon)
	}
	fp1, _ := spec.Fingerprint()
	fp2, _ := reparsed.Fingerprint()
	if fp1 != fp2 {
		t.Fatal("canonical round trip changed the fingerprint")
	}
	if !json.Valid(canon) {
		t.Fatal("canonical form is not valid JSON")
	}
}

// TestRunEngineReuseDifferential runs representative scenarios with engine
// reuse enabled (the default) and disabled, serial and parallel, and
// requires byte-identical renderings. This is the scenario-layer guarantee
// behind sweep's -fresh-engines escape hatch: reuse may never change output.
func TestRunEngineReuseDifferential(t *testing.T) {
	specs := map[string][]byte{
		"experiment-replicated": []byte(`{"version":1,"experiment":{
			"id":"fig2b","packets":60,"interarrivals":[5],"replicates":3,"seed":2}}`),
		"simulation-replicated": []byte(`{"version":1,"simulation":{
			"topology":{"kind":"line","hops":3},"packets":20,"replicates":3}}`),
	}
	for name, doc := range specs {
		t.Run(name, func(t *testing.T) {
			spec, err := Parse(doc)
			if err != nil {
				t.Fatal(err)
			}
			baseline, err := Run(context.Background(), spec, Options{DisableEngineReuse: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range []Options{
				{},
				{ReplicateWorkers: 3},
				{ReplicateWorkers: 3, DisableEngineReuse: true},
			} {
				out, err := Run(context.Background(), spec, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out.TableText, baseline.TableText) || !bytes.Equal(out.TableCSV, baseline.TableCSV) {
					t.Fatalf("opts %+v changed result bytes vs fresh-engine serial baseline", opts)
				}
			}
		})
	}
}
