package scenario

import (
	"errors"
	"testing"
)

// FuzzParse drives the scenario parser with arbitrary bytes. The contract
// under fuzz: never panic; every accepted document normalizes, fingerprints
// and round-trips through its canonical form; every rejection is tagged
// ErrInvalid (fail closed — malformed JSON, out-of-range λ/µ and unknown
// versions are errors, not best-effort interpretations).
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"version":1,"experiment":{"id":"fig2a"}}`))
	f.Add([]byte(`{"version":1,"experiment":{"id":"eq2-epi","packets":50,"replicates":4,"seed":9}}`))
	f.Add([]byte(`{"version":1,"simulation":{"topology":{"kind":"line","hops":3},"packets":30}}`))
	f.Add([]byte(`{"version":1,"simulation":{"topology":{"kind":"grid","width":4,"height":4},
		"traffic":{"kind":"poisson","rate":0.5},"policy":"delay-droptail",
		"delay":{"dist":"pareto","mean":20,"shape":2.5},
		"channel":{"loss_p":0.1,"burst":true,"burst_loss_p":0.5},
		"arq":{"max_retries":3},"adversary":"adaptive"}}`))
	f.Add([]byte(`{"version":2,"experiment":{"id":"fig2a"}}`))
	f.Add([]byte(`{"version":1,"experiment":{"id":"fig2a","packets":-1}}`))
	f.Add([]byte(`{"version":1,"experiment":{"id":"fig2a","mean_delay":1e308}}`))
	f.Add([]byte(`{"version":1,"simulation":{"topology":{"kind":"line","hops":99999}}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"version":1,"experiment":{"id":"fig2a"},"simulation":{}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("rejection not tagged ErrInvalid: %v", err)
			}
			return
		}
		fp, err := spec.Fingerprint()
		if err != nil {
			t.Fatalf("accepted spec does not fingerprint: %v", err)
		}
		if len(fp) != 64 {
			t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
		}
		canon, err := spec.CanonicalJSON()
		if err != nil {
			t.Fatalf("accepted spec does not canonicalize: %v", err)
		}
		reparsed, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		fp2, err := reparsed.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp2 != fp {
			t.Fatalf("canonical round trip changed fingerprint: %s -> %s", fp, fp2)
		}
	})
}
