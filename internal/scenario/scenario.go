// Package scenario defines the versioned JSON scenario specification that
// the serving subsystem (cmd/temprivd, internal/server) and the sweep CLI
// share: one declarative document describing a simulation study — topology,
// traffic, buffering policy, link loss/ARQ, adversary and replicate count —
// that parses strictly, validates fail-closed, canonicalizes to a unique
// normal form, and fingerprints to the SHA-256 content address the result
// cache (internal/resultcache) is keyed by.
//
// A Spec is either an "experiment" scenario (one registered study from
// internal/experiment, with its Params) or a "simulation" scenario (one
// ad-hoc network.Run described field by field). Both kinds execute through
// Run, so the HTTP server and the CLI share a single execution engine, and
// equal fingerprints always mean byte-identical result tables (every run is
// seed-deterministic by construction).
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"tempriv/internal/experiment"
	"tempriv/internal/telemetry"
)

// CurrentVersion is the only spec version this build understands. Unknown
// versions fail closed: a newer producer's spec is rejected, never
// half-interpreted.
const CurrentVersion = 1

// Hard validation bounds. The serving path accepts specs from the network,
// so every numeric field is range-checked: a spec cannot ask for an
// unbounded amount of work or a nonsensical model.
const (
	maxPackets       = 1_000_000
	maxReplicates    = 64
	maxInterarrivals = 64
	maxHops          = 1024
	maxGridSide      = 256
	maxCapacity      = 4096
	maxDelayMean     = 1e9
	maxTau           = 1e6
	maxARQRetries    = 100
)

// ErrInvalid tags every validation failure; errors.Is(err, ErrInvalid)
// distinguishes a bad spec (HTTP 400) from an execution failure (HTTP 500).
var ErrInvalid = errors.New("invalid scenario")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInvalid}, args...)...)
}

// Spec is one versioned scenario document. Exactly one of Experiment and
// Simulation must be set.
type Spec struct {
	// Version is the spec format version; must equal CurrentVersion.
	Version int `json:"version"`
	// Name is an optional human label. It is excluded from the
	// fingerprint: renaming a scenario does not invalidate its cached
	// results.
	Name string `json:"name,omitempty"`
	// Experiment runs one registered study from the experiment registry.
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
	// Simulation runs one ad-hoc simulation described field by field.
	Simulation *SimulationSpec `json:"simulation,omitempty"`
}

// ExperimentSpec selects a registered experiment and its Params. Zero
// fields take the paper defaults (experiment.Defaults), and normalization
// makes "omitted" and "explicitly default" fingerprint identically.
type ExperimentSpec struct {
	// ID is the registered experiment ("fig2a", "erlang", …). Required.
	ID string `json:"id"`
	// Seed drives all randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Packets per source (default 1000).
	Packets int `json:"packets,omitempty"`
	// Interarrivals is the 1/λ sweep (default 2..20).
	Interarrivals []float64 `json:"interarrivals,omitempty"`
	// MeanDelay is the per-hop mean buffering delay 1/µ (default 30).
	MeanDelay float64 `json:"mean_delay,omitempty"`
	// Capacity is the buffer size k (default 10).
	Capacity int `json:"capacity,omitempty"`
	// Tau is the per-hop transmission delay τ (default 1).
	Tau float64 `json:"tau,omitempty"`
	// Threshold is the adaptive adversary's switch point (default 0.1).
	Threshold float64 `json:"threshold,omitempty"`
	// Replicates averages the study over N consecutive seeds (default 1).
	Replicates int `json:"replicates,omitempty"`
}

// SimulationSpec describes one ad-hoc simulation: the rcadsim CLI's
// vocabulary as a declarative document.
type SimulationSpec struct {
	// Topology is the deployment. Required.
	Topology TopologySpec `json:"topology"`
	// Traffic is the per-source packet process (default periodic, 1/λ=2).
	Traffic TrafficSpec `json:"traffic,omitempty"`
	// Policy is the buffering behaviour: no-delay | delay-unlimited |
	// delay-droptail | rcad (default rcad).
	Policy string `json:"policy,omitempty"`
	// Delay is the buffering-delay distribution (default exponential,
	// mean 30). Must be absent for policy no-delay.
	Delay *DelaySpec `json:"delay,omitempty"`
	// Capacity is the buffer size k (default 10).
	Capacity int `json:"capacity,omitempty"`
	// Victim is the RCAD preemption rule (default shortest-remaining).
	Victim string `json:"victim,omitempty"`
	// Tau is the per-hop transmission delay τ (default 1).
	Tau float64 `json:"tau,omitempty"`
	// Seed drives all randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Packets per source (default 1000).
	Packets int `json:"packets,omitempty"`
	// Seal turns on end-to-end payload sealing (AES-CTR + HMAC).
	Seal bool `json:"seal,omitempty"`
	// Adversary scores the run: baseline | adaptive | path-aware
	// (default baseline).
	Adversary string `json:"adversary,omitempty"`
	// Threshold is the adaptive adversary's Erlang-loss switch point
	// (default 0.1).
	Threshold float64 `json:"threshold,omitempty"`
	// Channel models unreliable links (optional).
	Channel *ChannelSpec `json:"channel,omitempty"`
	// ARQ enables link-layer acknowledgement/retransmission (optional).
	ARQ *ARQSpec `json:"arq,omitempty"`
	// Replicates averages the scenario over N consecutive seeds
	// (default 1).
	Replicates int `json:"replicates,omitempty"`
}

// TopologySpec selects a deterministic deployment.
type TopologySpec struct {
	// Kind is figure1 | line | grid.
	Kind string `json:"kind"`
	// Hops is the line length (kind line; default 15).
	Hops int `json:"hops,omitempty"`
	// Width and Height size the grid (kind grid; default 10×10).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
}

// TrafficSpec selects the packet-creation process.
type TrafficSpec struct {
	// Kind is periodic | poisson | onoff (default periodic).
	Kind string `json:"kind,omitempty"`
	// Interval is the periodic interarrival 1/λ (kind periodic;
	// default 2).
	Interval float64 `json:"interval,omitempty"`
	// Rate is the Poisson/burst packet rate λ (kinds poisson and onoff;
	// required there).
	Rate float64 `json:"rate,omitempty"`
	// OnMean and OffMean are the mean burst and silence durations
	// (kind onoff; required there).
	OnMean  float64 `json:"on_mean,omitempty"`
	OffMean float64 `json:"off_mean,omitempty"`
}

// DelaySpec selects the buffering-delay distribution.
type DelaySpec struct {
	// Dist is exponential | uniform | constant | pareto (default
	// exponential).
	Dist string `json:"dist,omitempty"`
	// Mean is the distribution mean 1/µ (default 30).
	Mean float64 `json:"mean,omitempty"`
	// Shape is the Pareto tail index (kind pareto; must be > 1).
	Shape float64 `json:"shape,omitempty"`
}

// ChannelSpec models per-link frame loss, mirroring network.ChannelConfig.
type ChannelSpec struct {
	// LossP is the frame-loss probability (good state under Burst).
	LossP float64 `json:"loss_p,omitempty"`
	// Burst switches to the Gilbert–Elliott burst-loss channel.
	Burst bool `json:"burst,omitempty"`
	// BurstLossP is the bad-state loss probability (with Burst).
	BurstLossP float64 `json:"burst_loss_p,omitempty"`
	// MeanGoodRun and MeanBurstLen shape the burst process (0 = default).
	MeanGoodRun  float64 `json:"mean_good_run,omitempty"`
	MeanBurstLen float64 `json:"mean_burst_len,omitempty"`
	// AckLossP is the ACK-loss probability (requires ARQ).
	AckLossP float64 `json:"ack_loss_p,omitempty"`
}

// ARQSpec enables link-layer ARQ, mirroring network.ARQConfig.
type ARQSpec struct {
	// MaxRetries is the per-hop retransmission budget (default 3).
	MaxRetries int `json:"max_retries,omitempty"`
	// Timeout is the retransmission timeout (0 = 3τ).
	Timeout float64 `json:"timeout,omitempty"`
	// Backoff is the timeout multiplier (0 = 2; otherwise >= 1).
	Backoff float64 `json:"backoff,omitempty"`
}

// Parse decodes data as a Spec, strictly: unknown fields, trailing data,
// and any validation failure are errors. The returned spec is normalized
// (defaults filled), ready to Fingerprint or Run.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, invalidf("decoding: %v", err)
	}
	if dec.More() {
		return Spec{}, invalidf("trailing data after spec document")
	}
	return s.Normalize()
}

// Normalize validates s fail-closed and returns the canonical form: every
// defaultable zero field replaced by its default, so that two specs asking
// for the same study — one implicitly, one explicitly — are equal documents
// with equal fingerprints.
func (s Spec) Normalize() (Spec, error) {
	if s.Version != CurrentVersion {
		return Spec{}, invalidf("unsupported version %d (this build understands %d)", s.Version, CurrentVersion)
	}
	switch {
	case s.Experiment == nil && s.Simulation == nil:
		return Spec{}, invalidf("one of experiment or simulation is required")
	case s.Experiment != nil && s.Simulation != nil:
		return Spec{}, invalidf("experiment and simulation are mutually exclusive")
	case s.Experiment != nil:
		e := *s.Experiment
		if err := e.normalize(); err != nil {
			return Spec{}, err
		}
		s.Experiment = &e
	default:
		sim := *s.Simulation
		if err := sim.normalize(); err != nil {
			return Spec{}, err
		}
		s.Simulation = &sim
	}
	return s, nil
}

// Fingerprint returns the hex SHA-256 of the normalized spec's canonical
// JSON — the content address under which this scenario's results are
// cached. The Name field is excluded; every other field (seed included —
// results depend on it) participates.
func (s Spec) Fingerprint() (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	n.Name = ""
	return telemetry.Fingerprint(n)
}

// CanonicalJSON returns the normalized spec as deterministic JSON (the
// document the fingerprint hashes, plus the name label).
func (s Spec) CanonicalJSON() ([]byte, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Kind returns "experiment" or "simulation" for a validated spec.
func (s Spec) Kind() string {
	if s.Experiment != nil {
		return "experiment"
	}
	return "simulation"
}

// Label returns a short human identifier: the name if set, else the
// experiment ID or the simulation's topology/policy summary.
func (s Spec) Label() string {
	switch {
	case s.Name != "":
		return s.Name
	case s.Experiment != nil:
		return s.Experiment.ID
	case s.Simulation != nil:
		return s.Simulation.Topology.Kind + "/" + s.Simulation.Policy
	default:
		return "(invalid)"
	}
}

// Replicates returns the spec's across-seed replication count (1 for a
// single run) — how many chunk frames a fully streamed job persists.
func (s Spec) Replicates() int {
	n := 1
	switch {
	case s.Experiment != nil:
		n = s.Experiment.Replicates
	case s.Simulation != nil:
		n = s.Simulation.Replicates
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (e *ExperimentSpec) normalize() error {
	if e.ID == "" {
		return invalidf("experiment.id is required")
	}
	if _, err := experiment.ByID(e.ID); err != nil {
		return invalidf("experiment.id: %v", err)
	}
	d := experiment.Defaults()
	if e.Seed == 0 {
		e.Seed = d.Seed
	}
	if e.Packets == 0 {
		e.Packets = d.Packets
	}
	if e.Packets < 1 || e.Packets > maxPackets {
		return invalidf("experiment.packets %d out of range [1, %d]", e.Packets, maxPackets)
	}
	if len(e.Interarrivals) == 0 {
		e.Interarrivals = append([]float64(nil), d.Interarrivals...)
	}
	if len(e.Interarrivals) > maxInterarrivals {
		return invalidf("experiment.interarrivals has %d points (max %d)", len(e.Interarrivals), maxInterarrivals)
	}
	for _, ia := range e.Interarrivals {
		if !(ia > 0) || ia > maxTau {
			return invalidf("experiment.interarrivals value %v out of range (0, %g]", ia, float64(maxTau))
		}
	}
	if e.MeanDelay == 0 {
		e.MeanDelay = d.MeanDelay
	}
	if !(e.MeanDelay > 0) || e.MeanDelay > maxDelayMean {
		return invalidf("experiment.mean_delay %v out of range (0, %g]", e.MeanDelay, float64(maxDelayMean))
	}
	if e.Capacity == 0 {
		e.Capacity = d.Capacity
	}
	if e.Capacity < 1 || e.Capacity > maxCapacity {
		return invalidf("experiment.capacity %d out of range [1, %d]", e.Capacity, maxCapacity)
	}
	if e.Tau == 0 {
		e.Tau = d.Tau
	}
	if !(e.Tau > 0) || e.Tau > maxTau {
		return invalidf("experiment.tau %v out of range (0, %g]", e.Tau, float64(maxTau))
	}
	if e.Threshold == 0 {
		e.Threshold = d.Threshold
	}
	if !(e.Threshold > 0) || e.Threshold >= 1 {
		return invalidf("experiment.threshold %v out of range (0, 1)", e.Threshold)
	}
	if e.Replicates == 0 {
		e.Replicates = 1
	}
	if e.Replicates < 1 || e.Replicates > maxReplicates {
		return invalidf("experiment.replicates %d out of range [1, %d]", e.Replicates, maxReplicates)
	}
	return nil
}

func (m *SimulationSpec) normalize() error {
	if err := m.Topology.normalize(); err != nil {
		return err
	}
	if err := m.Traffic.normalize(); err != nil {
		return err
	}
	if m.Policy == "" {
		m.Policy = "rcad"
	}
	switch m.Policy {
	case "no-delay":
		if m.Delay != nil {
			return invalidf("simulation.delay must be absent for policy no-delay")
		}
	case "delay-unlimited", "delay-droptail", "rcad":
		if m.Delay == nil {
			m.Delay = &DelaySpec{}
		}
		if err := m.Delay.normalize(); err != nil {
			return err
		}
	default:
		return invalidf("simulation.policy %q unknown (no-delay | delay-unlimited | delay-droptail | rcad)", m.Policy)
	}
	d := experiment.Defaults()
	if m.Capacity == 0 {
		m.Capacity = d.Capacity
	}
	if m.Capacity < 1 || m.Capacity > maxCapacity {
		return invalidf("simulation.capacity %d out of range [1, %d]", m.Capacity, maxCapacity)
	}
	if m.Victim == "" {
		m.Victim = "shortest-remaining"
	}
	switch m.Victim {
	case "shortest-remaining", "longest-remaining", "oldest", "random":
	default:
		return invalidf("simulation.victim %q unknown", m.Victim)
	}
	if m.Tau == 0 {
		m.Tau = d.Tau
	}
	if !(m.Tau > 0) || m.Tau > maxTau {
		return invalidf("simulation.tau %v out of range (0, %g]", m.Tau, float64(maxTau))
	}
	if m.Seed == 0 {
		m.Seed = d.Seed
	}
	if m.Packets == 0 {
		m.Packets = d.Packets
	}
	if m.Packets < 1 || m.Packets > maxPackets {
		return invalidf("simulation.packets %d out of range [1, %d]", m.Packets, maxPackets)
	}
	if m.Adversary == "" {
		m.Adversary = "baseline"
	}
	switch m.Adversary {
	case "baseline", "adaptive", "path-aware":
	default:
		return invalidf("simulation.adversary %q unknown (baseline | adaptive | path-aware)", m.Adversary)
	}
	if m.Threshold == 0 {
		m.Threshold = d.Threshold
	}
	if !(m.Threshold > 0) || m.Threshold >= 1 {
		return invalidf("simulation.threshold %v out of range (0, 1)", m.Threshold)
	}
	if m.Channel != nil {
		c := *m.Channel
		if err := c.validate(m.ARQ != nil); err != nil {
			return err
		}
		m.Channel = &c
	}
	if m.ARQ != nil {
		a := *m.ARQ
		if err := a.normalize(); err != nil {
			return err
		}
		m.ARQ = &a
	}
	if m.Replicates == 0 {
		m.Replicates = 1
	}
	if m.Replicates < 1 || m.Replicates > maxReplicates {
		return invalidf("simulation.replicates %d out of range [1, %d]", m.Replicates, maxReplicates)
	}
	return nil
}

func (t *TopologySpec) normalize() error {
	switch t.Kind {
	case "figure1":
		if t.Hops != 0 || t.Width != 0 || t.Height != 0 {
			return invalidf("topology figure1 takes no size parameters")
		}
	case "line":
		if t.Width != 0 || t.Height != 0 {
			return invalidf("topology line takes no width/height")
		}
		if t.Hops == 0 {
			t.Hops = 15
		}
		if t.Hops < 1 || t.Hops > maxHops {
			return invalidf("topology.hops %d out of range [1, %d]", t.Hops, maxHops)
		}
	case "grid":
		if t.Hops != 0 {
			return invalidf("topology grid takes no hops")
		}
		if t.Width == 0 {
			t.Width = 10
		}
		if t.Height == 0 {
			t.Height = 10
		}
		if t.Width < 2 || t.Width > maxGridSide || t.Height < 2 || t.Height > maxGridSide {
			return invalidf("topology grid %dx%d out of range [2, %d]", t.Width, t.Height, maxGridSide)
		}
	case "":
		return invalidf("topology.kind is required (figure1 | line | grid)")
	default:
		return invalidf("topology.kind %q unknown (figure1 | line | grid)", t.Kind)
	}
	return nil
}

func (t *TrafficSpec) normalize() error {
	if t.Kind == "" {
		t.Kind = "periodic"
	}
	switch t.Kind {
	case "periodic":
		if t.Rate != 0 || t.OnMean != 0 || t.OffMean != 0 {
			return invalidf("traffic periodic takes only interval")
		}
		if t.Interval == 0 {
			t.Interval = 2
		}
		if !(t.Interval > 0) || t.Interval > maxTau {
			return invalidf("traffic.interval %v out of range (0, %g]", t.Interval, float64(maxTau))
		}
	case "poisson":
		if t.Interval != 0 || t.OnMean != 0 || t.OffMean != 0 {
			return invalidf("traffic poisson takes only rate")
		}
		if !(t.Rate > 0) || t.Rate > maxTau {
			return invalidf("traffic.rate %v out of range (0, %g]", t.Rate, float64(maxTau))
		}
	case "onoff":
		if t.Interval != 0 {
			return invalidf("traffic onoff takes rate, on_mean, off_mean")
		}
		if !(t.Rate > 0) || t.Rate > maxTau {
			return invalidf("traffic.rate %v out of range (0, %g]", t.Rate, float64(maxTau))
		}
		if !(t.OnMean > 0) || t.OnMean > maxTau || !(t.OffMean > 0) || t.OffMean > maxTau {
			return invalidf("traffic.on_mean/off_mean must be in (0, %g]", float64(maxTau))
		}
	default:
		return invalidf("traffic.kind %q unknown (periodic | poisson | onoff)", t.Kind)
	}
	return nil
}

func (d *DelaySpec) normalize() error {
	if d.Dist == "" {
		d.Dist = "exponential"
	}
	if d.Mean == 0 {
		d.Mean = experiment.Defaults().MeanDelay
	}
	if !(d.Mean > 0) || d.Mean > maxDelayMean {
		return invalidf("delay.mean %v out of range (0, %g]", d.Mean, float64(maxDelayMean))
	}
	switch d.Dist {
	case "exponential", "uniform", "constant":
		if d.Shape != 0 {
			return invalidf("delay.shape only applies to dist pareto")
		}
	case "pareto":
		if d.Shape == 0 {
			d.Shape = 2.5
		}
		if !(d.Shape > 1) {
			return invalidf("delay.shape %v must be > 1", d.Shape)
		}
	default:
		return invalidf("delay.dist %q unknown (exponential | uniform | constant | pareto)", d.Dist)
	}
	return nil
}

func (c *ChannelSpec) validate(hasARQ bool) error {
	for name, p := range map[string]float64{
		"loss_p": c.LossP, "burst_loss_p": c.BurstLossP, "ack_loss_p": c.AckLossP,
	} {
		if p < 0 || p > 1 {
			return invalidf("channel.%s %v out of range [0, 1]", name, p)
		}
	}
	if c.MeanGoodRun < 0 || c.MeanBurstLen < 0 {
		return invalidf("channel burst run lengths must be >= 0")
	}
	if (c.MeanGoodRun != 0 || c.MeanBurstLen != 0 || c.BurstLossP != 0) && !c.Burst {
		return invalidf("channel burst parameters require burst: true")
	}
	if c.AckLossP > 0 && !hasARQ {
		return invalidf("channel.ack_loss_p requires arq")
	}
	if !c.Burst && c.LossP == 0 && c.AckLossP == 0 {
		return invalidf("channel configured with zero loss everywhere; omit it instead")
	}
	return nil
}

func (a *ARQSpec) normalize() error {
	if a.MaxRetries == 0 {
		a.MaxRetries = 3
	}
	if a.MaxRetries < 1 || a.MaxRetries > maxARQRetries {
		return invalidf("arq.max_retries %d out of range [1, %d]", a.MaxRetries, maxARQRetries)
	}
	if a.Timeout < 0 || a.Timeout > maxTau {
		return invalidf("arq.timeout %v out of range [0, %g]", a.Timeout, float64(maxTau))
	}
	if a.Backoff == 0 {
		a.Backoff = 2
	}
	if a.Backoff < 1 || a.Backoff > 100 {
		return invalidf("arq.backoff %v out of range [1, 100]", a.Backoff)
	}
	return nil
}
