package scenario

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tempriv/internal/resultstream"
)

// openSink opens a chunk-store sink for the spec, failing the test on error.
func openSink(t *testing.T, store *resultstream.Store, spec Spec) *resultstream.Sink {
	t.Helper()
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	sink, err := store.Sink(fp, spec.Replicates(), resultstream.SinkHooks{})
	if err != nil {
		t.Fatal(err)
	}
	return sink
}

func TestRunWithChunkSinkIsByteIdenticalAndResumes(t *testing.T) {
	spec, err := Parse([]byte(`{"version":1,"simulation":{
		"topology":{"kind":"line","hops":3},"packets":20,"replicates":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}

	store, err := resultstream.Open(t.TempDir(), resultstream.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Fresh run with the chunk sink attached: same bytes, every replicate
	// persisted.
	sink := openSink(t, store, spec)
	streamed, err := Run(context.Background(), spec, Options{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.TableText, baseline.TableText) {
		t.Fatal("chunk sink changed result bytes")
	}
	if sink.Persisted() != 3 || sink.Skipped() != 0 {
		t.Fatalf("persisted=%d skipped=%d, want 3/0", sink.Persisted(), sink.Skipped())
	}

	// Second life over the same store: everything resumes, nothing
	// recomputes, bytes identical.
	sink2 := openSink(t, store, spec)
	resumed, err := Run(context.Background(), spec, Options{Sink: sink2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed.TableText, baseline.TableText) {
		t.Fatal("fully-resumed run is not byte-identical")
	}
	if sink2.Skipped() != 3 {
		t.Fatalf("skipped=%d, want all 3 replicates resumed", sink2.Skipped())
	}
}

func TestRunResumesMidJobAfterSimulatedCrash(t *testing.T) {
	spec, err := Parse([]byte(`{"version":1,"simulation":{
		"topology":{"kind":"line","hops":3},"packets":20,"replicates":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store, err := resultstream.Open(dir, resultstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := openSink(t, store, spec)
	if _, err := Run(context.Background(), spec, Options{Sink: sink}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash after replicate 1: keep the first two frames and a
	// torn fragment of the third — exactly what SIGKILL mid-append leaves.
	path := filepath.Join(dir, fp+".chunks.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("expected 3 chunk frames, got %d", len(lines))
	}
	torn := append(append([]byte(nil), bytes.Join(lines[:2], nil)...), lines[2][:10]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	sink2 := openSink(t, store, spec)
	recovered, err := Run(context.Background(), spec, Options{Sink: sink2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if sink2.Skipped() != 2 {
		t.Fatalf("skipped=%d, want 2 surviving replicates resumed", sink2.Skipped())
	}
	if !bytes.Equal(recovered.TableText, baseline.TableText) {
		t.Fatal("recovered run is not byte-identical to the uninterrupted run")
	}
}

func TestRunSingleReplicateUsesSink(t *testing.T) {
	// replicates=1 takes the non-replicated path; the sink must still see
	// the one result so single runs are resumable too.
	spec, err := Parse(validExperimentJSON())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Replicates() != 1 {
		t.Fatalf("fixture replicates = %d, want 1", spec.Replicates())
	}
	baseline, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := resultstream.Open(t.TempDir(), resultstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := openSink(t, store, spec)
	out, err := Run(context.Background(), spec, Options{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Persisted() != 1 {
		t.Fatalf("persisted=%d, want 1", sink.Persisted())
	}
	if !bytes.Equal(out.TableText, baseline.TableText) {
		t.Fatal("sink changed single-replicate bytes")
	}

	sink2 := openSink(t, store, spec)
	resumed, err := Run(context.Background(), spec, Options{Sink: sink2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if sink2.Skipped() != 1 {
		t.Fatalf("skipped=%d, want the single replicate resumed", sink2.Skipped())
	}
	if !bytes.Equal(resumed.TableText, baseline.TableText) {
		t.Fatal("resumed single-replicate run is not byte-identical")
	}
}

func TestSpecReplicates(t *testing.T) {
	cases := []struct {
		json string
		want int
	}{
		{`{"version":1,"experiment":{"id":"fig2a"}}`, 1},
		{`{"version":1,"experiment":{"id":"fig2a","replicates":5}}`, 5},
		{`{"version":1,"simulation":{"topology":{"kind":"line","hops":3},"packets":20}}`, 1},
		{`{"version":1,"simulation":{"topology":{"kind":"line","hops":3},"packets":20,"replicates":4}}`, 4},
	}
	for _, tc := range cases {
		spec, err := Parse([]byte(tc.json))
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Replicates(); got != tc.want {
			t.Fatalf("Replicates(%s) = %d, want %d", strings.TrimSpace(tc.json), got, tc.want)
		}
	}
}
