package jobs

import (
	"context"
	"testing"
	"time"
)

func TestNoteChunksEventsSnapshotAndJournal(t *testing.T) {
	sink := &recordingSink{}
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		job.NoteChunks(1)
		job.NoteChunks(3)
		job.NoteChunks(2) // regression: the mark is monotonic
		job.NoteChunks(3) // duplicate: no second event
		return &Result{}, nil
	}
	q := New(runner, Options{Workers: 1, Journal: sink})
	defer q.Drain(context.Background())
	s, err := q.Submit(testSpec(t, 90))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.ChunksPersisted != 3 {
		t.Fatalf("ChunksPersisted = %d, want 3", final.ChunksPersisted)
	}
	if final.Replicates != 1 {
		t.Fatalf("Replicates = %d, want 1 (fig2a default)", final.Replicates)
	}

	history, _, stop, ok := q.Watch(s.ID)
	if !ok {
		t.Fatal("watch failed")
	}
	stop()
	var chunkEvents []int
	for _, ev := range history {
		if ev.Stage == "chunk" {
			chunkEvents = append(chunkEvents, ev.Chunks)
		}
	}
	if len(chunkEvents) != 2 || chunkEvents[0] != 1 || chunkEvents[1] != 3 {
		t.Fatalf("chunk events = %v, want [1 3]", chunkEvents)
	}

	sink.mu.Lock()
	journaled := append([]string(nil), sink.chunks...)
	sink.mu.Unlock()
	want := []string{s.ID + ":1", s.ID + ":3"}
	if len(journaled) != len(want) || journaled[0] != want[0] || journaled[1] != want[1] {
		t.Fatalf("journaled chunks = %v, want %v", journaled, want)
	}
}

func TestNoteChunksIgnoredAfterTerminal(t *testing.T) {
	q := New(okRunner(&Result{}), Options{Workers: 1})
	defer q.Drain(context.Background())
	s, err := q.Submit(testSpec(t, 91))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, s.ID)
	q.mu.Lock()
	j := q.jobs[s.ID]
	q.mu.Unlock()
	j.NoteChunks(5)
	if snap, _ := q.Get(s.ID); snap.ChunksPersisted != 0 {
		t.Fatalf("terminal job accepted chunk mark: %d", snap.ChunksPersisted)
	}
}

func TestRestoreCarriesChunkHighWaterMark(t *testing.T) {
	spec := testSpec(t, 92)
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	var sawHWM int
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		if snap, ok := job.queue.Get(job.ID); ok {
			sawHWM = snap.ChunksPersisted
		}
		return &Result{}, nil
	}
	q := New(runner, Options{Workers: 1, Restore: []RestoredJob{{
		ID: "job-000007", Spec: spec, Fingerprint: fp,
		State: StateRunning, Submitted: time.Unix(1, 0), ChunkHWM: 2,
	}}})
	defer q.Drain(context.Background())
	final := waitTerminal(t, q, "job-000007")
	if final.State != StateDone {
		t.Fatalf("state = %q, want done", final.State)
	}
	if sawHWM != 2 {
		t.Fatalf("runner saw ChunksPersisted = %d, want the restored mark 2", sawHWM)
	}
	history, _, stop, ok := q.Watch("job-000007")
	if !ok {
		t.Fatal("watch failed")
	}
	stop()
	found := false
	for _, ev := range history {
		if ev.Stage == "restored" && ev.Chunks == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("restore event does not report surviving chunks: %+v", history)
	}
}
