package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tempriv/internal/scenario"
)

func testSpec(t *testing.T, seed uint64) scenario.Spec {
	t.Helper()
	doc := fmt.Sprintf(`{"version":1,"experiment":{"id":"fig2a","packets":10,"interarrivals":[4],"seed":%d}}`, seed)
	spec, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func okRunner(res *Result) Runner {
	return func(ctx context.Context, job *Job, progress func(stage, message string)) (*Result, error) {
		progress("run", "working")
		out := *res
		out.Fingerprint = job.Fingerprint
		return &out, nil
	}
}

func waitTerminal(t *testing.T, q *Queue, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s unknown", id)
		}
		if s.State.Terminal() {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Snapshot{}
}

func TestSubmitRunsToDone(t *testing.T) {
	q := New(okRunner(&Result{TableText: []byte("table")}), Options{Workers: 2})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint == "" {
		t.Fatal("snapshot missing fingerprint")
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateDone {
		t.Fatalf("state = %q, want done (error %q)", final.State, final.Error)
	}
	got, ok := q.Result(s.ID)
	if !ok {
		t.Fatal("no result for done job")
	}
	if string(got.TableText) != "table" || got.Fingerprint != s.Fingerprint {
		t.Fatalf("result = %+v", got)
	}
	history, _, stop, ok := q.Watch(s.ID)
	if !ok {
		t.Fatal("watch failed")
	}
	stop()
	if len(history) == 0 {
		t.Fatal("no events recorded")
	}
}

func TestTransientErrorRetries(t *testing.T) {
	var attempts atomic.Int32
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		if attempts.Add(1) < 3 {
			return nil, fmt.Errorf("%w: flaky backend", ErrTransient)
		}
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1, MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateDone {
		t.Fatalf("state = %q after retries, want done (error %q)", final.State, final.Error)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("runner ran %d times, want 3", n)
	}
	if final.Attempts != 3 {
		t.Fatalf("snapshot attempts = %d, want 3", final.Attempts)
	}
}

func TestTransientErrorExhaustsRetries(t *testing.T) {
	var attempts atomic.Int32
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		attempts.Add(1)
		return nil, fmt.Errorf("%w: always down", ErrTransient)
	}
	q := New(runner, Options{Workers: 1, MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if n := attempts.Load(); n != 3 { // initial + 2 retries
		t.Fatalf("runner ran %d times, want 3", n)
	}
	if _, ok := q.Result(s.ID); ok {
		t.Fatal("Result succeeded for a failed job")
	}
}

func TestPermanentErrorDoesNotRetry(t *testing.T) {
	var attempts atomic.Int32
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		attempts.Add(1)
		return nil, errors.New("bad scenario")
	}
	q := New(runner, Options{Workers: 1, MaxRetries: 5, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("permanent error retried: %d attempts", n)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	q := New(runner, Options{Workers: 1})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := q.Cancel(s.ID); !ok {
		t.Fatal("cancel failed")
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateCanceled {
		t.Fatalf("state = %q, want canceled", final.State)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1})
	defer func() {
		close(block)
		q.Drain(context.Background())
	}()

	// First job occupies the only worker; second stays queued.
	if _, err := q.Submit(testSpec(t, 6)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := q.Submit(testSpec(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := q.Cancel(queued.ID)
	if !ok {
		t.Fatal("cancel failed")
	}
	if snap.State != StateCanceled {
		t.Fatalf("queued job canceled lazily: state %q", snap.State)
	}
}

func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &Result{}, nil
	}
	q := New(runner, Options{Workers: 1, QueueDepth: 1})
	defer func() {
		close(block)
		q.Drain(context.Background())
	}()

	if _, err := q.Submit(testSpec(t, 8)); err != nil { // running
		t.Fatal(err)
	}
	<-started
	if _, err := q.Submit(testSpec(t, 9)); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := q.Submit(testSpec(t, 10)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestDrainWaitsForInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return &Result{Fingerprint: job.Fingerprint}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	q := New(runner, Options{Workers: 1})

	s, err := q.Submit(testSpec(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()

	// Submissions are refused once the drain begins.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := q.Submit(testSpec(t, 12)); errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Submit never started returning ErrDraining")
		}
		time.Sleep(time.Millisecond)
	}

	// The drain must not finish while the job is still running.
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) before the in-flight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job completed rather than being aborted.
	final, ok := q.Get(s.ID)
	if !ok {
		t.Fatal("job lost")
	}
	if final.State != StateDone {
		t.Fatalf("state = %q after graceful drain, want done", final.State)
	}
}

func TestDrainTimeoutCancelsJobs(t *testing.T) {
	started := make(chan struct{})
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		close(started)
		<-ctx.Done() // never finishes voluntarily
		return nil, ctx.Err()
	}
	q := New(runner, Options{Workers: 1})

	s, err := q.Submit(testSpec(t, 13))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateCanceled && final.State != StateFailed {
		t.Fatalf("state = %q after forced drain, want canceled or failed", final.State)
	}
}

func TestWatchReplaysOrderedHistory(t *testing.T) {
	q := New(okRunner(&Result{}), Options{Workers: 1})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 14))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, s.ID)

	// Watching a terminal job replays its full history; the live channel is
	// already closed.
	history, live, stop, ok := q.Watch(s.ID)
	if !ok {
		t.Fatal("watch failed")
	}
	defer stop()
	for range live {
		t.Fatal("terminal job delivered live events")
	}
	if len(history) == 0 {
		t.Fatal("watch replayed no events")
	}
	for i := 1; i < len(history); i++ {
		if history[i].Seq <= history[i-1].Seq {
			t.Fatalf("events out of order: %+v", history)
		}
	}
	last := history[len(history)-1]
	if last.State != StateDone {
		t.Fatalf("last event state = %q, want done", last.State)
	}
}

func TestWatchStreamsLiveEvents(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		close(started)
		<-release
		progress("run", "almost done")
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 15))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	_, live, stop, ok := q.Watch(s.ID)
	if !ok {
		t.Fatal("watch failed")
	}
	defer stop()
	close(release)

	sawDone := false
	timeout := time.After(5 * time.Second)
	for !sawDone {
		select {
		case ev, open := <-live:
			if !open {
				if !sawDone {
					t.Fatal("live channel closed without a done event")
				}
			} else if ev.State == StateDone {
				sawDone = true
			}
		case <-timeout:
			t.Fatal("no done event streamed")
		}
	}
}

func TestGetUnknownJob(t *testing.T) {
	q := New(okRunner(&Result{}), Options{})
	defer q.Drain(context.Background())
	if _, ok := q.Get("job-999999"); ok {
		t.Fatal("Get of unknown job succeeded")
	}
	if _, ok := q.Cancel("job-999999"); ok {
		t.Fatal("Cancel of unknown job succeeded")
	}
	if _, _, _, ok := q.Watch("job-999999"); ok {
		t.Fatal("Watch of unknown job succeeded")
	}
}

func TestListOrdering(t *testing.T) {
	q := New(okRunner(&Result{}), Options{Workers: 1})
	defer q.Drain(context.Background())
	var ids []string
	for i := 0; i < 3; i++ {
		s, err := q.Submit(testSpec(t, uint64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	for _, id := range ids {
		waitTerminal(t, q, id)
	}
	list := q.List()
	if len(list) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(list))
	}
	for i, s := range list {
		if s.ID != ids[i] {
			t.Fatalf("list order %v, want %v", list, ids)
		}
	}
}

// TestDrainLeavesNoGoroutines is the leak check from the issue: after a
// graceful drain every worker goroutine has exited and watcher channels are
// closed.
func TestDrainLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	q := New(okRunner(&Result{}), Options{Workers: 4})
	var ids []string
	for i := 0; i < 8; i++ {
		s, err := q.Submit(testSpec(t, uint64(30+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	// Hold a live watcher over the drain to prove it gets closed out too.
	_, live, stop, ok := q.Watch(ids[len(ids)-1])
	if !ok {
		t.Fatal("watch failed")
	}
	drainedWatcher := make(chan struct{})
	go func() {
		defer close(drainedWatcher)
		for range live {
		}
	}()
	defer stop()

	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		s := waitTerminal(t, q, id)
		if s.State != StateDone {
			t.Fatalf("job %s state %q after drain", id, s.State)
		}
	}
	select {
	case <-drainedWatcher:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher channel never closed")
	}

	// Goroutine counts are noisy; poll until we're back at (or below) the
	// baseline plus slack for runtime helpers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- PR 5 additions: backoff, deadlines, restore, admission, journal ---

func TestBackoffJitteredExponentialDeterministic(t *testing.T) {
	q := New(okRunner(&Result{}), Options{RetryBase: 100 * time.Millisecond, RetryMax: time.Second, RetrySeed: 42})
	defer q.Drain(context.Background())
	q2 := New(okRunner(&Result{}), Options{RetryBase: 100 * time.Millisecond, RetryMax: time.Second, RetrySeed: 42})
	defer q2.Drain(context.Background())

	var seq []time.Duration
	for attempt := 0; attempt < 8; attempt++ {
		d := q.nextBackoff(attempt)
		// d must lie in [cap/2, cap] for cap = min(base<<attempt, max).
		capd := 100 * time.Millisecond << attempt
		if capd > time.Second || capd <= 0 {
			capd = time.Second
		}
		if d < capd/2 || d > capd {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, capd/2, capd)
		}
		seq = append(seq, d)
	}
	// Same seed, same sequence: the jitter is deterministic.
	for attempt := 0; attempt < 8; attempt++ {
		if d := q2.nextBackoff(attempt); d != seq[attempt] {
			t.Fatalf("attempt %d: seeded backoff diverged: %v vs %v", attempt, d, seq[attempt])
		}
	}
	// Huge attempt numbers must not overflow past the cap.
	if d := q.nextBackoff(200); d > time.Second {
		t.Fatalf("attempt 200: backoff %v exceeds cap", d)
	}
}

func TestRetryEventsCarryAttemptAndBackoff(t *testing.T) {
	var attempts atomic.Int32
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		if attempts.Add(1) < 3 {
			return nil, fmt.Errorf("%w: flaky", ErrTransient)
		}
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1, MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	defer q.Drain(context.Background())
	s, err := q.Submit(testSpec(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, s.ID)
	history, _, stop, _ := q.Watch(s.ID)
	stop()
	var retries []Event
	for _, ev := range history {
		if ev.Stage == "retry" {
			retries = append(retries, ev)
		}
	}
	if len(retries) != 2 {
		t.Fatalf("retry events = %d, want 2: %+v", len(retries), history)
	}
	for i, ev := range retries {
		if ev.Attempt != i+1 {
			t.Errorf("retry %d: attempt = %d, want %d", i, ev.Attempt, i+1)
		}
		if ev.BackoffMS < 0 {
			t.Errorf("retry %d: negative backoff %d", i, ev.BackoffMS)
		}
	}
	// The terminal event carries the final attempt count.
	last := history[len(history)-1]
	if last.State != StateDone || last.Attempt != 3 {
		t.Fatalf("terminal event = %+v, want done on attempt 3", last)
	}
}

func TestRunTimeoutFailsJob(t *testing.T) {
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	q := New(runner, Options{Workers: 1, RunTimeout: 30 * time.Millisecond})
	defer q.Drain(context.Background())
	s, err := q.Submit(testSpec(t, 41))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %q, want failed (deadline is not a cancel)", final.State)
	}
	if !strings.Contains(final.Error, "run deadline") {
		t.Fatalf("error %q does not mention the run deadline", final.Error)
	}
}

func TestRunTimeoutSpansRetries(t *testing.T) {
	// Every attempt fails transiently; the per-job deadline must cut the
	// retry loop short rather than letting MaxRetries prolong it.
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		return nil, fmt.Errorf("%w: down", ErrTransient)
	}
	q := New(runner, Options{Workers: 1, MaxRetries: 1000, RetryBase: 5 * time.Millisecond, RetryMax: 5 * time.Millisecond, RunTimeout: 50 * time.Millisecond})
	defer q.Drain(context.Background())
	s, err := q.Submit(testSpec(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	final := waitTerminal(t, q, s.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline did not bound the retry loop: %v", elapsed)
	}
}

func TestRestoreTerminalJobQueryable(t *testing.T) {
	spec := testSpec(t, 43)
	fp, _ := spec.Fingerprint()
	q := New(okRunner(&Result{}), Options{Restore: []RestoredJob{
		{ID: "job-000007", Spec: spec, Fingerprint: fp, State: StateDone, Attempts: 2, CacheHit: true, Submitted: time.Unix(1, 0), Finished: time.Unix(2, 0)},
		{ID: "job-000008", Spec: spec, Fingerprint: fp, State: StateFailed, Attempts: 3, Error: "boom", Submitted: time.Unix(3, 0)},
	}})
	defer q.Drain(context.Background())

	s, ok := q.Get("job-000007")
	if !ok || s.State != StateDone || !s.CacheHit || s.Attempts != 2 {
		t.Fatalf("restored done job = %+v, ok=%v", s, ok)
	}
	if _, ok := q.Result("job-000007"); ok {
		t.Fatal("restored job should have no in-memory result")
	}
	f, ok := q.Get("job-000008")
	if !ok || f.State != StateFailed || f.Error != "boom" {
		t.Fatalf("restored failed job = %+v", f)
	}
	// Watch on a restored terminal job replays the synthetic history.
	history, live, stop, ok := q.Watch("job-000007")
	if !ok || len(history) == 0 || history[0].Stage != "restored" {
		t.Fatalf("history = %+v", history)
	}
	stop()
	for range live {
		t.Fatal("terminal restored job delivered live events")
	}
	// The ID sequence continues past the restored IDs.
	snap, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "job-000009" {
		t.Fatalf("next ID = %s, want job-000009", snap.ID)
	}
}

func TestRestoreReenqueuesNonTerminal(t *testing.T) {
	spec := testSpec(t, 44)
	fp, _ := spec.Fingerprint()
	q := New(okRunner(&Result{TableText: []byte("t")}), Options{Workers: 2, Restore: []RestoredJob{
		{ID: "job-000001", Spec: spec, Fingerprint: fp, State: StateQueued, Submitted: time.Unix(1, 0)},
		{ID: "job-000002", Spec: spec, Fingerprint: fp, State: StateRunning, Attempts: 1, Submitted: time.Unix(2, 0)},
	}})
	defer q.Drain(context.Background())
	for _, id := range []string{"job-000001", "job-000002"} {
		final := waitTerminal(t, q, id)
		if final.State != StateDone {
			t.Fatalf("restored job %s state %q, want done (error %q)", id, final.State, final.Error)
		}
		if res, ok := q.Result(id); !ok || string(res.TableText) != "t" {
			t.Fatalf("restored job %s result missing", id)
		}
	}
}

func TestRestoreSkipsInvalidIDs(t *testing.T) {
	spec := testSpec(t, 45)
	fp, _ := spec.Fingerprint()
	q := New(okRunner(&Result{}), Options{Restore: []RestoredJob{
		{ID: "not-a-job", Spec: spec, Fingerprint: fp, State: StateQueued},
		{ID: "job--3", Spec: spec, Fingerprint: fp, State: StateQueued},
	}})
	defer q.Drain(context.Background())
	if list := q.List(); len(list) != 0 {
		t.Fatalf("invalid restored jobs accepted: %+v", list)
	}
}

func TestAdmissionBoundCountsBacklog(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &Result{}, nil
	}
	spec := testSpec(t, 46)
	fp, _ := spec.Fingerprint()
	// One restored job + QueueDepth 1: the restored backlog occupies the
	// admission budget until a worker picks it up.
	q := New(runner, Options{Workers: 1, QueueDepth: 1, Restore: []RestoredJob{
		{ID: "job-000001", Spec: spec, Fingerprint: fp, State: StateQueued, Submitted: time.Unix(1, 0)},
	}})
	defer func() {
		close(block)
		q.Drain(context.Background())
	}()
	<-started                                            // worker picked up the restored job; backlog is empty again
	if _, err := q.Submit(testSpec(t, 47)); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := q.Submit(testSpec(t, 48)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if b := q.Backlog(); b != 1 {
		t.Fatalf("backlog = %d, want 1", b)
	}
}

// recordingSink captures journal notifications for assertions.
type recordingSink struct {
	mu     sync.Mutex
	subs   []string
	trns   []string
	chunks []string
}

func (r *recordingSink) Submitted(id, fp string, spec scenario.Spec, origin string, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if origin != "" {
		id += "(" + origin + ")"
	}
	r.subs = append(r.subs, id)
}

func (r *recordingSink) Transition(id string, state State, attempt int, cacheHit bool, errMsg string, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trns = append(r.trns, fmt.Sprintf("%s:%s", id, state))
}

func (r *recordingSink) Chunk(id string, hwm int, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.chunks = append(r.chunks, fmt.Sprintf("%s:%d", id, hwm))
}

func (r *recordingSink) snapshot() ([]string, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.subs...), append([]string(nil), r.trns...)
}

func TestJournalSinkSeesLifecycle(t *testing.T) {
	sink := &recordingSink{}
	q := New(okRunner(&Result{}), Options{Workers: 1, Journal: sink})
	defer q.Drain(context.Background())
	s, err := q.Submit(testSpec(t, 49))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, s.ID)
	subs, trns := sink.snapshot()
	if len(subs) != 1 || subs[0] != s.ID {
		t.Fatalf("submissions journaled: %v", subs)
	}
	want := []string{s.ID + ":running", s.ID + ":done"}
	if len(trns) != len(want) {
		t.Fatalf("transitions journaled: %v, want %v", trns, want)
	}
	for i := range want {
		if trns[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, trns[i], want[i])
		}
	}
}

func TestJournalSinkSeesQueuedCancel(t *testing.T) {
	sink := &recordingSink{}
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &Result{}, nil
	}
	q := New(runner, Options{Workers: 1, Journal: sink})
	defer func() {
		close(block)
		q.Drain(context.Background())
	}()
	if _, err := q.Submit(testSpec(t, 50)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := q.Submit(testSpec(t, 51))
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel(queued.ID)
	_, trns := sink.snapshot()
	found := false
	for _, tr := range trns {
		if tr == queued.ID+":canceled" {
			found = true
		}
	}
	if !found {
		t.Fatalf("queued cancel not journaled: %v", trns)
	}
}

func TestOnDoneFiresWithSnapshotAndResult(t *testing.T) {
	type completion struct {
		snap Snapshot
		res  *Result
	}
	got := make(chan completion, 4)
	q := New(okRunner(&Result{TableText: []byte("table")}), Options{
		Workers: 1,
		OnDone:  func(snap Snapshot, res *Result) { got <- completion{snap, res} },
	})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 91))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, s.ID)
	select {
	case c := <-got:
		if c.snap.ID != s.ID || c.snap.State != StateDone {
			t.Fatalf("OnDone snapshot = %+v", c.snap)
		}
		if c.res == nil || string(c.res.TableText) != "table" || c.res.Fingerprint != s.Fingerprint {
			t.Fatalf("OnDone result = %+v", c.res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDone never fired for a done job")
	}
}

func TestOnDoneDoesNotFireOnFailure(t *testing.T) {
	fired := make(chan struct{}, 1)
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		return nil, errors.New("permanent failure")
	}
	q := New(runner, Options{
		Workers: 1,
		OnDone:  func(Snapshot, *Result) { fired <- struct{}{} },
	})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 92))
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, q, s.ID); final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	select {
	case <-fired:
		t.Fatal("OnDone fired for a failed job")
	case <-time.After(50 * time.Millisecond):
	}
}
