package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tempriv/internal/scenario"
)

func testSpec(t *testing.T, seed uint64) scenario.Spec {
	t.Helper()
	doc := fmt.Sprintf(`{"version":1,"experiment":{"id":"fig2a","packets":10,"interarrivals":[4],"seed":%d}}`, seed)
	spec, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func okRunner(res *Result) Runner {
	return func(ctx context.Context, job *Job, progress func(stage, message string)) (*Result, error) {
		progress("run", "working")
		out := *res
		out.Fingerprint = job.Fingerprint
		return &out, nil
	}
}

func waitTerminal(t *testing.T, q *Queue, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s unknown", id)
		}
		if s.State.Terminal() {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Snapshot{}
}

func TestSubmitRunsToDone(t *testing.T) {
	q := New(okRunner(&Result{TableText: []byte("table")}), Options{Workers: 2})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint == "" {
		t.Fatal("snapshot missing fingerprint")
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateDone {
		t.Fatalf("state = %q, want done (error %q)", final.State, final.Error)
	}
	got, ok := q.Result(s.ID)
	if !ok {
		t.Fatal("no result for done job")
	}
	if string(got.TableText) != "table" || got.Fingerprint != s.Fingerprint {
		t.Fatalf("result = %+v", got)
	}
	history, _, stop, ok := q.Watch(s.ID)
	if !ok {
		t.Fatal("watch failed")
	}
	stop()
	if len(history) == 0 {
		t.Fatal("no events recorded")
	}
}

func TestTransientErrorRetries(t *testing.T) {
	var attempts atomic.Int32
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		if attempts.Add(1) < 3 {
			return nil, fmt.Errorf("%w: flaky backend", ErrTransient)
		}
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1, MaxRetries: 2, RetryDelay: time.Millisecond})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateDone {
		t.Fatalf("state = %q after retries, want done (error %q)", final.State, final.Error)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("runner ran %d times, want 3", n)
	}
	if final.Attempts != 3 {
		t.Fatalf("snapshot attempts = %d, want 3", final.Attempts)
	}
}

func TestTransientErrorExhaustsRetries(t *testing.T) {
	var attempts atomic.Int32
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		attempts.Add(1)
		return nil, fmt.Errorf("%w: always down", ErrTransient)
	}
	q := New(runner, Options{Workers: 1, MaxRetries: 2, RetryDelay: time.Millisecond})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if n := attempts.Load(); n != 3 { // initial + 2 retries
		t.Fatalf("runner ran %d times, want 3", n)
	}
	if _, ok := q.Result(s.ID); ok {
		t.Fatal("Result succeeded for a failed job")
	}
}

func TestPermanentErrorDoesNotRetry(t *testing.T) {
	var attempts atomic.Int32
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		attempts.Add(1)
		return nil, errors.New("bad scenario")
	}
	q := New(runner, Options{Workers: 1, MaxRetries: 5, RetryDelay: time.Millisecond})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("permanent error retried: %d attempts", n)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	q := New(runner, Options{Workers: 1})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := q.Cancel(s.ID); !ok {
		t.Fatal("cancel failed")
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateCanceled {
		t.Fatalf("state = %q, want canceled", final.State)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1})
	defer func() {
		close(block)
		q.Drain(context.Background())
	}()

	// First job occupies the only worker; second stays queued.
	if _, err := q.Submit(testSpec(t, 6)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := q.Submit(testSpec(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := q.Cancel(queued.ID)
	if !ok {
		t.Fatal("cancel failed")
	}
	if snap.State != StateCanceled {
		t.Fatalf("queued job canceled lazily: state %q", snap.State)
	}
}

func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &Result{}, nil
	}
	q := New(runner, Options{Workers: 1, QueueDepth: 1})
	defer func() {
		close(block)
		q.Drain(context.Background())
	}()

	if _, err := q.Submit(testSpec(t, 8)); err != nil { // running
		t.Fatal(err)
	}
	<-started
	if _, err := q.Submit(testSpec(t, 9)); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := q.Submit(testSpec(t, 10)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestDrainWaitsForInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return &Result{Fingerprint: job.Fingerprint}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	q := New(runner, Options{Workers: 1})

	s, err := q.Submit(testSpec(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()

	// Submissions are refused once the drain begins.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := q.Submit(testSpec(t, 12)); errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Submit never started returning ErrDraining")
		}
		time.Sleep(time.Millisecond)
	}

	// The drain must not finish while the job is still running.
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) before the in-flight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job completed rather than being aborted.
	final, ok := q.Get(s.ID)
	if !ok {
		t.Fatal("job lost")
	}
	if final.State != StateDone {
		t.Fatalf("state = %q after graceful drain, want done", final.State)
	}
}

func TestDrainTimeoutCancelsJobs(t *testing.T) {
	started := make(chan struct{})
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		close(started)
		<-ctx.Done() // never finishes voluntarily
		return nil, ctx.Err()
	}
	q := New(runner, Options{Workers: 1})

	s, err := q.Submit(testSpec(t, 13))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	final := waitTerminal(t, q, s.ID)
	if final.State != StateCanceled && final.State != StateFailed {
		t.Fatalf("state = %q after forced drain, want canceled or failed", final.State)
	}
}

func TestWatchReplaysOrderedHistory(t *testing.T) {
	q := New(okRunner(&Result{}), Options{Workers: 1})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 14))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, s.ID)

	// Watching a terminal job replays its full history; the live channel is
	// already closed.
	history, live, stop, ok := q.Watch(s.ID)
	if !ok {
		t.Fatal("watch failed")
	}
	defer stop()
	for range live {
		t.Fatal("terminal job delivered live events")
	}
	if len(history) == 0 {
		t.Fatal("watch replayed no events")
	}
	for i := 1; i < len(history); i++ {
		if history[i].Seq <= history[i-1].Seq {
			t.Fatalf("events out of order: %+v", history)
		}
	}
	last := history[len(history)-1]
	if last.State != StateDone {
		t.Fatalf("last event state = %q, want done", last.State)
	}
}

func TestWatchStreamsLiveEvents(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		close(started)
		<-release
		progress("run", "almost done")
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1})
	defer q.Drain(context.Background())

	s, err := q.Submit(testSpec(t, 15))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	_, live, stop, ok := q.Watch(s.ID)
	if !ok {
		t.Fatal("watch failed")
	}
	defer stop()
	close(release)

	sawDone := false
	timeout := time.After(5 * time.Second)
	for !sawDone {
		select {
		case ev, open := <-live:
			if !open {
				if !sawDone {
					t.Fatal("live channel closed without a done event")
				}
			} else if ev.State == StateDone {
				sawDone = true
			}
		case <-timeout:
			t.Fatal("no done event streamed")
		}
	}
}

func TestGetUnknownJob(t *testing.T) {
	q := New(okRunner(&Result{}), Options{})
	defer q.Drain(context.Background())
	if _, ok := q.Get("job-999999"); ok {
		t.Fatal("Get of unknown job succeeded")
	}
	if _, ok := q.Cancel("job-999999"); ok {
		t.Fatal("Cancel of unknown job succeeded")
	}
	if _, _, _, ok := q.Watch("job-999999"); ok {
		t.Fatal("Watch of unknown job succeeded")
	}
}

func TestListOrdering(t *testing.T) {
	q := New(okRunner(&Result{}), Options{Workers: 1})
	defer q.Drain(context.Background())
	var ids []string
	for i := 0; i < 3; i++ {
		s, err := q.Submit(testSpec(t, uint64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	for _, id := range ids {
		waitTerminal(t, q, id)
	}
	list := q.List()
	if len(list) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(list))
	}
	for i, s := range list {
		if s.ID != ids[i] {
			t.Fatalf("list order %v, want %v", list, ids)
		}
	}
}

// TestDrainLeavesNoGoroutines is the leak check from the issue: after a
// graceful drain every worker goroutine has exited and watcher channels are
// closed.
func TestDrainLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	q := New(okRunner(&Result{}), Options{Workers: 4})
	var ids []string
	for i := 0; i < 8; i++ {
		s, err := q.Submit(testSpec(t, uint64(30+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	// Hold a live watcher over the drain to prove it gets closed out too.
	_, live, stop, ok := q.Watch(ids[len(ids)-1])
	if !ok {
		t.Fatal("watch failed")
	}
	drainedWatcher := make(chan struct{})
	go func() {
		defer close(drainedWatcher)
		for range live {
		}
	}()
	defer stop()

	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		s := waitTerminal(t, q, id)
		if s.State != StateDone {
			t.Fatalf("job %s state %q after drain", id, s.State)
		}
	}
	select {
	case <-drainedWatcher:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher channel never closed")
	}

	// Goroutine counts are noisy; poll until we're back at (or below) the
	// baseline plus slack for runtime helpers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
