// Package jobs is the serving subsystem's execution queue: a bounded
// worker pool that runs scenario specs (internal/scenario) through a
// pluggable Runner, with per-job context cancellation and run deadlines,
// jittered-exponential retry of transient failures, ordered progress events
// that clients can stream, graceful draining for shutdown, and an optional
// write-ahead journal sink (internal/jobstore) plus restore path that make
// the queue survive a crash.
//
// The queue knows nothing about HTTP or caching — the Runner closure wires
// those in (see internal/server) — which keeps cancellation, retry and
// drain logic testable with a stub runner.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"tempriv/internal/obs"
	"tempriv/internal/scenario"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the scenario.
	StateRunning State = "running"
	// StateDone: finished successfully; Result is set.
	StateDone State = "done"
	// StateFailed: finished with a permanent error (after any retries).
	StateFailed State = "failed"
	// StateCanceled: canceled before or during execution.
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ErrTransient marks an error worth retrying (wrap it with fmt.Errorf and
// %w). Anything else — scenario errors are deterministic — fails the job
// permanently.
var ErrTransient = errors.New("transient failure")

// OriginHandoff marks a submission that the cluster gateway re-dispatched
// from a dead worker (internal/cluster/gateway): the job is not a new
// client request but the continuation of one accepted elsewhere. The
// origin travels through events, snapshots and the journal so operators
// can tell organic load from crash-recovery load.
const OriginHandoff = "handoff"

// ErrQueueFull is returned by Submit when the pending queue is at capacity.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrDraining is returned by Submit after Drain has begun.
var ErrDraining = errors.New("jobs: queue draining")

// Result is what a Runner produces for a completed job.
type Result struct {
	// Fingerprint is the scenario's content address.
	Fingerprint string `json:"fingerprint"`
	// CacheHit records whether the result came from the result cache.
	CacheHit bool `json:"cache_hit"`
	// TableText, TableCSV and Manifest are the scenario's artifacts —
	// byte-identical between a cache hit and a fresh run.
	TableText []byte `json:"-"`
	TableCSV  []byte `json:"-"`
	Manifest  []byte `json:"-"`
}

// Runner executes one job. It must honor ctx (return promptly once
// canceled) and report coarse progress through progress(stage, message).
type Runner func(ctx context.Context, job *Job, progress func(stage, message string)) (*Result, error)

// JournalSink receives durable notifications of queue activity. The queue
// calls it synchronously under its lock, so implementations must be fast,
// must never call back into the queue, and must swallow their own errors
// (a sick journal degrades durability, not serving — see
// internal/jobstore).
type JournalSink interface {
	// Submitted records an accepted job before Submit returns. origin is
	// the submission's provenance ("" for a direct client submission,
	// OriginHandoff for a cluster crash handoff).
	Submitted(id, fingerprint string, spec scenario.Spec, origin string, at time.Time)
	// Transition records a state change. attempt is the attempt count so
	// far; cacheHit and errMsg qualify terminal states.
	Transition(id string, state State, attempt int, cacheHit bool, errMsg string, at time.Time)
	// Chunk records that a running job's persisted result-chunk high-water
	// mark reached hwm replicates (see internal/resultstream), so a
	// post-crash restore knows the job resumes rather than restarts.
	Chunk(id string, hwm int, at time.Time)
}

// Event is one progress record. Events are totally ordered per job by Seq,
// so a client can replay history and then follow the live stream without
// gaps or duplicates.
type Event struct {
	Seq     int    `json:"seq"`
	State   State  `json:"state"`
	Stage   string `json:"stage,omitempty"`
	Message string `json:"message,omitempty"`
	// Attempt and BackoffMS annotate retry events: which attempt just
	// failed and how long the queue backs off before the next one.
	Attempt   int   `json:"attempt,omitempty"`
	BackoffMS int64 `json:"backoff_ms,omitempty"`
	// Chunks annotates chunk-progress events: how many replicate result
	// chunks are durably persisted so far.
	Chunks int `json:"chunks,omitempty"`
}

// Job is one submitted scenario. All mutable fields are guarded by the
// owning Queue's lock; callers outside this package only see Snapshots.
type Job struct {
	// ID is the queue-assigned identifier ("job-000001", …).
	ID string
	// Spec is the normalized scenario.
	Spec scenario.Spec
	// Fingerprint is Spec.Fingerprint(), computed at submission.
	Fingerprint string
	// Origin is the submission's provenance ("" = direct client
	// submission; OriginHandoff = cluster crash handoff).
	Origin string

	state     State
	attempts  int
	err       error
	result    *Result
	events    []Event
	watchers  []chan Event
	submitted time.Time
	started   time.Time
	finished  time.Time
	ctx       context.Context
	cancel    context.CancelFunc
	canceled  bool
	// restoredHit preserves the cache-hit flag of a journal-restored done
	// job whose result bytes live in the result cache, not in memory.
	restoredHit bool
	// chunkHWM is the persisted result-chunk high-water mark: how many
	// replicates of this job are durable on disk (internal/resultstream).
	// Monotonic; survives restore via the journal's chunk records.
	chunkHWM int
	// queue points back at the owning queue so NoteChunks can take its lock.
	queue *Queue
	// span is the job's root trace span (zero when the submission was
	// untraced — restored jobs, tests); queueSpan times the wait between
	// acceptance and worker pickup. Zero SpanRefs no-op, so the queue
	// never branches on whether tracing is enabled.
	span      obs.SpanRef
	queueSpan obs.SpanRef
}

// NoteChunks records that the job's persisted result chunks now cover
// `persisted` replicates. The Runner calls it (outside the queue lock) as
// internal/resultstream confirms appends; the mark is monotonic, surfaces
// as a "chunk" progress event and in Snapshot.ChunksPersisted, and is
// journaled so a post-crash restore reports how much work survived.
func (j *Job) NoteChunks(persisted int) {
	q := j.queue
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.state.Terminal() || persisted <= j.chunkHWM {
		return
	}
	j.chunkHWM = persisted
	q.appendEventLocked(j, Event{
		State:   j.state,
		Stage:   "chunk",
		Message: fmt.Sprintf("%d replicate chunk(s) persisted", persisted),
		Chunks:  persisted,
	})
	if q.opts.Journal != nil {
		q.opts.Journal.Chunk(j.ID, persisted, time.Now())
	}
}

// Snapshot is a consistent, copyable view of a job for status endpoints.
type Snapshot struct {
	ID          string    `json:"id"`
	Name        string    `json:"name,omitempty"`
	Fingerprint string    `json:"fingerprint"`
	State       State     `json:"state"`
	Attempts    int       `json:"attempts"`
	Error       string    `json:"error,omitempty"`
	CacheHit    bool      `json:"cache_hit"`
	Submitted   time.Time `json:"submitted"`
	Started     time.Time `json:"started"`
	Finished    time.Time `json:"finished"`
	// Replicates is how many replicates the spec runs; ChunksPersisted is
	// how many of them are durable as result chunks so far. Together they
	// let clients gauge partial-result progress (see /result?partial=1).
	Replicates      int `json:"replicates,omitempty"`
	ChunksPersisted int `json:"chunks_persisted,omitempty"`
	// Origin marks non-organic submissions (jobs.OriginHandoff for a
	// cluster crash handoff); empty for direct client submissions.
	Origin string `json:"origin,omitempty"`
}

// RestoredJob re-creates one journal-replayed job at queue construction
// (see Options.Restore and internal/jobstore).
type RestoredJob struct {
	ID          string
	Spec        scenario.Spec
	Fingerprint string
	// State is the job's last journaled state. Terminal states are
	// restored as-is (result bytes, if any, live in the result cache);
	// queued and running jobs are re-enqueued from scratch.
	State     State
	Attempts  int
	CacheHit  bool
	Error     string
	Submitted time.Time
	Finished  time.Time
	// ChunkHWM is the job's journaled result-chunk high-water mark: how
	// many replicates were durable when the journal last heard. A restored
	// non-terminal job with ChunkHWM > 0 resumes from the surviving chunks
	// instead of recomputing them.
	ChunkHWM int
	// Origin is the journaled submission provenance (see Job.Origin).
	Origin string
}

// Options configure a Queue.
type Options struct {
	// Workers is the worker-pool size (default 1).
	Workers int
	// QueueDepth bounds pending submissions (default 64); Submit returns
	// ErrQueueFull beyond it. Restored jobs count against the bound until
	// a worker picks them up, so a deep crash backlog sheds new load
	// instead of compounding.
	QueueDepth int
	// MaxRetries is how many times a transient failure re-runs before the
	// job fails (default 2).
	MaxRetries int
	// RetryBase and RetryMax shape the jittered exponential backoff
	// between attempts: attempt n sleeps a uniformly jittered duration in
	// [d/2, d] where d = min(RetryBase·2ⁿ, RetryMax). Defaults 100ms / 5s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the backoff jitter RNG (deterministic; default 1).
	RetrySeed uint64
	// RunTimeout bounds one job's total execution (all attempts) via
	// context.WithTimeout; 0 means no deadline.
	RunTimeout time.Duration
	// Journal, when non-nil, durably records submissions and transitions.
	Journal JournalSink
	// Restore re-creates journal-replayed jobs before the workers start:
	// terminal jobs become queryable history, queued/running jobs are
	// re-enqueued. IDs are preserved and the ID sequence continues past
	// the highest restored ID.
	Restore []RestoredJob
	// Log, when non-nil, receives structured lifecycle records (accepted,
	// started, retrying, finished) with trace/job IDs attached via the
	// record context (see internal/obs.ContextHandler).
	Log *slog.Logger
	// OnDone, when non-nil, fires after a job reaches StateDone — from the
	// worker goroutine, outside the queue lock — with the job's final
	// snapshot and result. The cluster hooks this to replicate finished
	// result bytes to a ring peer (internal/cluster/peering); it should
	// hand the bytes off quickly rather than do I/O inline, since the
	// worker is held until it returns.
	OnDone func(snap Snapshot, res *Result)
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 64
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.RetryMax < o.RetryBase {
		o.RetryMax = o.RetryBase
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	return o
}

// Queue is the bounded worker-pool job queue.
type Queue struct {
	opts    Options
	runner  Runner
	pending chan *Job
	wg      sync.WaitGroup

	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	queued   int // jobs accepted but not yet picked up by a worker
	draining bool
	rng      *rand.Rand
}

// New starts a queue with the given runner and options. Restored jobs (see
// Options.Restore) are re-created before the first worker starts, so replay
// can never race fresh submissions for a job ID.
func New(runner Runner, opts Options) *Queue {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		opts: opts,
		// The channel is sized so restored re-enqueues can never block:
		// admission is enforced by the queued counter, not the buffer.
		pending:   make(chan *Job, opts.QueueDepth+len(opts.Restore)),
		runner:    runner,
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*Job),
		rng:       rand.New(rand.NewSource(int64(opts.RetrySeed))),
	}
	for _, r := range opts.Restore {
		q.restore(r)
	}
	for i := 0; i < opts.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// restore re-creates one replayed job. Invalid or duplicate entries are
// skipped (internal/jobstore validates and dedups, so this is a backstop).
func (q *Queue) restore(r RestoredJob) {
	var n int
	if _, err := fmt.Sscanf(r.ID, "job-%d", &n); err != nil || n <= 0 {
		return
	}
	if _, exists := q.jobs[r.ID]; exists {
		return
	}
	if n > q.nextID {
		q.nextID = n
	}
	jctx, jcancel := context.WithCancel(q.baseCtx)
	j := &Job{
		ID:          r.ID,
		Spec:        r.Spec,
		Fingerprint: r.Fingerprint,
		Origin:      r.Origin,
		attempts:    r.Attempts,
		submitted:   r.Submitted,
		finished:    r.Finished,
		ctx:         jctx,
		cancel:      jcancel,
		queue:       q,
	}
	q.jobs[r.ID] = j
	q.order = append(q.order, r.ID)
	if r.State.Terminal() {
		j.state = r.State
		j.restoredHit = r.CacheHit
		if r.Error != "" {
			j.err = errors.New(r.Error)
		}
		q.appendEventLocked(j, Event{State: r.State, Stage: "restored", Message: "restored from journal"})
		j.cancel()
		return
	}
	// Queued or running at crash time: back to the start of the line. Any
	// journaled chunk high-water mark carries over so the re-run resumes
	// from the surviving chunks instead of recomputing them.
	j.state = StateQueued
	j.attempts = 0
	msg := "re-enqueued after journal replay"
	if r.ChunkHWM > 0 {
		j.chunkHWM = r.ChunkHWM
		msg = fmt.Sprintf("re-enqueued after journal replay; %d replicate chunk(s) survive", r.ChunkHWM)
	}
	q.appendEventLocked(j, Event{State: StateQueued, Stage: "restored", Message: msg, Chunks: r.ChunkHWM})
	q.journalTransition(j.ID, StateQueued, 0, false, "")
	q.pending <- j
	q.queued++
}

// journalTransition forwards a state change to the journal sink (nil-safe).
// Called with q.mu held (or from New before workers start).
func (q *Queue) journalTransition(id string, state State, attempt int, cacheHit bool, errMsg string) {
	if q.opts.Journal != nil {
		q.opts.Journal.Transition(id, state, attempt, cacheHit, errMsg, time.Now())
	}
}

// Submit is SubmitCtx with a background (untraced) context.
func (q *Queue) Submit(spec scenario.Spec) (Snapshot, error) {
	return q.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is SubmitOrigin with an empty (direct-submission) origin.
func (q *Queue) SubmitCtx(ctx context.Context, spec scenario.Spec) (Snapshot, error) {
	return q.SubmitOrigin(ctx, spec, "")
}

// SubmitOrigin validates nothing — the caller passes an already-normalized
// spec — and enqueues it, returning the job's initial snapshot. The
// submission is journaled (when a sink is configured) before SubmitOrigin
// returns, so an accepted job survives a crash. origin tags the
// submission's provenance ("" for a direct client submission,
// OriginHandoff for a cluster crash handoff); it travels through the
// queued event, every snapshot and the journal.
//
// ctx is for observability only, never cancellation: when it carries a
// trace span (internal/obs), the job adopts it as its root span, binds the
// trace to the job ID, and times its queue wait, attempts, backoffs and
// engine stages under it. The job's execution context stays derived from
// the queue, so an HTTP client disconnecting does not cancel its job.
func (q *Queue) SubmitOrigin(ctx context.Context, spec scenario.Spec, origin string) (Snapshot, error) {
	fp, err := spec.Fingerprint()
	if err != nil {
		return Snapshot{}, err
	}
	span := obs.SpanFromContext(ctx)
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return Snapshot{}, ErrDraining
	}
	if q.queued >= q.opts.QueueDepth {
		q.mu.Unlock()
		return Snapshot{}, ErrQueueFull
	}
	q.nextID++
	jctx, jcancel := context.WithCancel(q.baseCtx)
	j := &Job{
		ID:          fmt.Sprintf("job-%06d", q.nextID),
		Spec:        spec,
		Fingerprint: fp,
		Origin:      origin,
		state:       StateQueued,
		submitted:   time.Now(),
		ctx:         jctx,
		cancel:      jcancel,
		queue:       q,
		span:        span,
	}
	span.BindJob(j.ID)
	j.queueSpan = span.Child("queue")
	// The enqueue happens under the lock so it cannot race Drain's
	// close(q.pending); the buffer is sized past the admission bound, so
	// the send never blocks (the default is a backstop, not a policy).
	select {
	case q.pending <- j:
	default:
		jcancel()
		q.mu.Unlock()
		return Snapshot{}, ErrQueueFull
	}
	q.queued++
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	queuedEv := Event{State: StateQueued, Stage: "queued"}
	if origin != "" {
		queuedEv.Message = "origin: " + origin
	}
	q.appendEventLocked(j, queuedEv)
	if q.opts.Journal != nil {
		q.opts.Journal.Submitted(j.ID, fp, spec, origin, j.submitted)
	}
	snap := q.snapshotLocked(j)
	q.mu.Unlock()
	attrs := []slog.Attr{slog.String("fingerprint", fp), slog.String("name", spec.Name)}
	if origin != "" {
		attrs = append(attrs, slog.String("origin", origin))
	}
	q.logJob(j, slog.LevelInfo, "job accepted", attrs...)
	return snap, nil
}

// logJob emits one structured lifecycle record (no-op without a logger).
// The record context carries the job's span, so trace_id and job_id
// attach through the obs.ContextHandler. Never called with q.mu held —
// the log writer is outside this package's control.
func (q *Queue) logJob(j *Job, level slog.Level, msg string, attrs ...slog.Attr) {
	if q.opts.Log == nil {
		return
	}
	ctx := obs.ContextWithSpan(context.Background(), j.span)
	q.opts.Log.LogAttrs(ctx, level, msg, append(attrs, slog.String("job", j.ID))...)
}

// Get returns a job's snapshot.
func (q *Queue) Get(id string) (Snapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return q.snapshotLocked(j), true
}

// Result returns a done job's result. A journal-restored done job has no
// in-memory result (its bytes live in the result cache, addressed by
// fingerprint) and returns false here.
func (q *Queue) Result(id string) (*Result, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok || j.result == nil {
		return nil, false
	}
	return j.result, true
}

// List returns all jobs in submission order.
func (q *Queue) List() []Snapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Snapshot, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.snapshotLocked(q.jobs[id]))
	}
	return out
}

// Backlog returns how many accepted jobs are waiting for a worker.
func (q *Queue) Backlog() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// Cancel requests a job stop. Queued jobs cancel immediately; running jobs
// get their context canceled and finish as canceled once the runner
// returns. Canceling a terminal job is a no-op.
func (q *Queue) Cancel(id string) (Snapshot, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return Snapshot{}, false
	}
	var canceledQueued bool
	if !j.state.Terminal() {
		j.canceled = true
		j.cancel()
		if j.state == StateQueued {
			j.state = StateCanceled
			q.appendEventLocked(j, Event{State: StateCanceled, Stage: "canceled", Message: "canceled while queued"})
			q.journalTransition(j.ID, StateCanceled, j.attempts, false, "canceled while queued")
			q.finishLocked(j)
			canceledQueued = true
		} else {
			q.appendEventLocked(j, Event{State: j.state, Stage: "cancel-requested"})
		}
	}
	snap := q.snapshotLocked(j)
	q.mu.Unlock()
	if canceledQueued {
		j.queueSpan.Annotate("outcome", "canceled")
		j.queueSpan.End()
		j.endTrace(StateCanceled)
		q.logJob(j, slog.LevelInfo, "job canceled while queued")
	}
	return snap, true
}

// endTrace closes the job's root span with its terminal state — finishing
// the trace (flight-recorder commit + JSONL stream). Zero-span safe.
func (j *Job) endTrace(state State) {
	j.span.Annotate("state", string(state))
	j.span.End()
}

// Watch returns the job's event history so far and a channel delivering
// subsequent events; the channel closes when the job reaches a terminal
// state. Call stop to unsubscribe early.
func (q *Queue) Watch(id string) (history []Event, live <-chan Event, stop func(), ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, okk := q.jobs[id]
	if !okk {
		return nil, nil, nil, false
	}
	history = append([]Event(nil), j.events...)
	if j.state.Terminal() {
		ch := make(chan Event)
		close(ch)
		return history, ch, func() {}, true
	}
	ch := make(chan Event, 64)
	j.watchers = append(j.watchers, ch)
	stop = func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		for i, w := range j.watchers {
			if w == ch {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return history, ch, stop, true
}

// Drain stops accepting submissions and waits for in-flight jobs to finish.
// If ctx expires first, every remaining job's context is canceled and Drain
// waits (briefly) for the workers to acknowledge. Queue resources —
// including the worker goroutines — are fully released when Drain returns.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	already := q.draining
	q.draining = true
	q.mu.Unlock()
	if !already {
		close(q.pending)
	}

	done := make(chan struct{})
	go func() { q.wg.Wait(); close(done) }()
	select {
	case <-done:
		q.cancelAll()
		return nil
	case <-ctx.Done():
		// Hard drain: abort everything and wait for the workers, which by
		// contract return promptly once their job contexts cancel.
		q.cancelAll()
		<-done
		return ctx.Err()
	}
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.pending {
		q.runOne(j)
	}
}

// nextBackoff returns the jittered exponential delay before retrying after
// attempt (0-based): uniform in [d/2, d] with d = min(RetryBase·2ᵃ,
// RetryMax). Called with q.mu held (the RNG is lock-guarded).
func (q *Queue) nextBackoff(attempt int) time.Duration {
	d := q.opts.RetryMax
	if attempt < 30 { // past 2³⁰·base the cap has long since won
		if exp := q.opts.RetryBase << attempt; exp > 0 && exp < d {
			d = exp
		}
	}
	half := d / 2
	return half + time.Duration(q.rng.Int63n(int64(half)+1))
}

func (q *Queue) runOne(j *Job) {
	q.mu.Lock()
	q.queued--
	if j.state != StateQueued { // canceled while queued
		q.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	q.appendEventLocked(j, Event{State: StateRunning, Stage: "started"})
	q.journalTransition(j.ID, StateRunning, j.attempts+1, false, "")
	ctx := j.ctx
	q.mu.Unlock()
	j.queueSpan.End()
	q.logJob(j, slog.LevelDebug, "job started")

	// The run deadline spans every attempt: a job cannot occupy a worker
	// past RunTimeout no matter how its retries interleave.
	if q.opts.RunTimeout > 0 {
		var cancelRun context.CancelFunc
		ctx, cancelRun = context.WithTimeout(ctx, q.opts.RunTimeout)
		defer cancelRun()
	}

	progress := func(stage, message string) {
		q.mu.Lock()
		q.appendEventLocked(j, Event{State: StateRunning, Stage: stage, Message: message})
		q.mu.Unlock()
	}

	var res *Result
	var err error
	for attempt := 0; ; attempt++ {
		q.mu.Lock()
		j.attempts = attempt + 1
		q.mu.Unlock()
		// Each attempt gets its own span; the runner's stage spans (cache,
		// engine, chunks) hang off it through the context.
		attSpan := j.span.Child("attempt")
		attSpan.AnnotateInt("attempt", int64(attempt+1))
		res, err = q.runner(obs.ContextWithSpan(ctx, attSpan), j, progress)
		attSpan.EndErr(err)
		if err == nil || ctx.Err() != nil || !errors.Is(err, ErrTransient) || attempt >= q.opts.MaxRetries {
			break
		}
		q.mu.Lock()
		delay := q.nextBackoff(attempt)
		q.appendEventLocked(j, Event{
			State:     StateRunning,
			Stage:     "retry",
			Message:   fmt.Sprintf("attempt %d failed transiently: %v", attempt+1, err),
			Attempt:   attempt + 1,
			BackoffMS: delay.Milliseconds(),
		})
		q.mu.Unlock()
		q.logJob(j, slog.LevelWarn, "job retrying after transient failure",
			slog.Int("attempt", attempt+1), slog.Int64("backoff_ms", delay.Milliseconds()),
			slog.String("error", err.Error()))
		backoffSpan := j.span.Child("backoff")
		backoffSpan.AnnotateInt("attempt", int64(attempt+1))
		backoffSpan.AnnotateInt("backoff_ms", delay.Milliseconds())
		select {
		case <-ctx.Done():
		case <-time.After(delay):
		}
		backoffSpan.End()
		if ctx.Err() != nil {
			break
		}
	}

	q.mu.Lock()
	j.finished = time.Now()
	if err != nil && !j.canceled && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		err = fmt.Errorf("run deadline %v exceeded after %d attempt(s): %w", q.opts.RunTimeout, j.attempts, err)
	}
	switch {
	case ctx.Err() != nil && j.canceled:
		j.state = StateCanceled
		j.err = context.Canceled
		q.appendEventLocked(j, Event{State: StateCanceled, Stage: "canceled", Message: "canceled while running"})
		q.journalTransition(j.ID, StateCanceled, j.attempts, false, "canceled while running")
	case err != nil:
		j.state = StateFailed
		j.err = err
		q.appendEventLocked(j, Event{State: StateFailed, Stage: "failed", Message: err.Error(), Attempt: j.attempts})
		q.journalTransition(j.ID, StateFailed, j.attempts, false, err.Error())
	default:
		j.state = StateDone
		j.result = res
		msg := "fresh run"
		if res.CacheHit {
			msg = "result cache hit"
		}
		q.appendEventLocked(j, Event{State: StateDone, Stage: "done", Message: msg, Attempt: j.attempts})
		q.journalTransition(j.ID, StateDone, j.attempts, res.CacheHit, "")
	}
	state := j.state
	attempts := j.attempts
	elapsed := j.finished.Sub(j.started)
	var doneSnap Snapshot
	if state == StateDone && q.opts.OnDone != nil {
		doneSnap = q.snapshotLocked(j)
	}
	q.finishLocked(j)
	q.mu.Unlock()

	switch state {
	case StateDone:
		j.span.Annotate("cache_hit", fmt.Sprintf("%t", res.CacheHit))
		q.logJob(j, slog.LevelInfo, "job done",
			slog.Bool("cache_hit", res.CacheHit), slog.Int("attempts", attempts),
			slog.Duration("elapsed", elapsed))
		if q.opts.OnDone != nil {
			q.opts.OnDone(doneSnap, res)
		}
	case StateFailed:
		q.logJob(j, slog.LevelError, "job failed",
			slog.Int("attempts", attempts), slog.String("error", err.Error()),
			slog.Duration("elapsed", elapsed))
	default:
		q.logJob(j, slog.LevelInfo, "job canceled while running",
			slog.Duration("elapsed", elapsed))
	}
	j.endTrace(state)
}

// appendEventLocked records an event and fans it out to watchers. A watcher
// that has fallen 64 events behind loses intermediate events rather than
// blocking the worker (the history replay on reconnect fills gaps).
func (q *Queue) appendEventLocked(j *Job, ev Event) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	for _, w := range j.watchers {
		select {
		case w <- ev:
		default:
		}
	}
}

// finishLocked releases a terminal job's resources: its context and its
// watcher channels.
func (q *Queue) finishLocked(j *Job) {
	j.cancel()
	for _, w := range j.watchers {
		close(w)
	}
	j.watchers = nil
}

func (q *Queue) snapshotLocked(j *Job) Snapshot {
	s := Snapshot{
		ID:              j.ID,
		Name:            j.Spec.Name,
		Fingerprint:     j.Fingerprint,
		State:           j.state,
		Attempts:        j.attempts,
		Submitted:       j.submitted,
		Started:         j.started,
		Finished:        j.finished,
		Replicates:      j.Spec.Replicates(),
		ChunksPersisted: j.chunkHWM,
		Origin:          j.Origin,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if j.result != nil {
		s.CacheHit = j.result.CacheHit
	} else if j.restoredHit {
		s.CacheHit = true
	}
	return s
}
