package jobs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tempriv/internal/obs"
)

// treeSpans collects every span named name anywhere under root.
func treeSpans(root *obs.SpanTree, name string) []*obs.SpanTree {
	var out []*obs.SpanTree
	if root == nil {
		return nil
	}
	if root.Name == name {
		out = append(out, root)
	}
	for _, c := range root.Children {
		out = append(out, treeSpans(c, name)...)
	}
	return out
}

func TestTraceSpansAcrossRetries(t *testing.T) {
	var attempts atomic.Int32
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		// The attempt span must reach the runner through its context.
		if !obs.SpanFromContext(ctx).Enabled() {
			t.Error("runner ctx carries no span")
		}
		if attempts.Add(1) < 3 {
			return nil, fmt.Errorf("%w: flaky backend", ErrTransient)
		}
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1, MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	defer q.Drain(context.Background())

	tracer := obs.New(obs.Options{})
	ctx, root := tracer.StartTrace(context.Background(), "", "job")
	s, err := q.SubmitCtx(ctx, testSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	_ = root
	final := waitTerminal(t, q, s.ID)
	if final.State != StateDone {
		t.Fatalf("state = %q, want done", final.State)
	}

	tree, ok := tracer.ByJob(s.ID)
	if !ok {
		t.Fatal("no trace bound to the job ID")
	}
	if !tree.Complete {
		t.Fatal("trace still open after the job finished")
	}
	if tree.Root.Attrs["state"] != "done" || tree.Root.Attrs["cache_hit"] != "false" {
		t.Fatalf("root attrs: %v", tree.Root.Attrs)
	}
	if got := treeSpans(tree.Root, "queue"); len(got) != 1 || got[0].DurationNS < 0 {
		t.Fatalf("queue spans: %+v", got)
	}
	atts := treeSpans(tree.Root, "attempt")
	if len(atts) != 3 {
		t.Fatalf("%d attempt spans, want 3", len(atts))
	}
	for i, a := range atts {
		if a.Attrs["attempt"] != fmt.Sprint(i+1) {
			t.Errorf("attempt span %d attrs: %v", i, a.Attrs)
		}
		failed := i < 2
		if _, hasErr := a.Attrs["error"]; hasErr != failed {
			t.Errorf("attempt %d error annotation = %v, want %v", i+1, hasErr, failed)
		}
	}
	backoffs := treeSpans(tree.Root, "backoff")
	if len(backoffs) != 2 {
		t.Fatalf("%d backoff spans, want 2", len(backoffs))
	}
	for _, b := range backoffs {
		if b.Attrs["backoff_ms"] == "" {
			t.Errorf("backoff span missing backoff_ms: %v", b.Attrs)
		}
	}
}

func TestCancelWhileQueuedEndsTrace(t *testing.T) {
	block := make(chan struct{})
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		<-block
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1})
	defer func() {
		close(block)
		q.Drain(context.Background())
	}()

	// Occupy the only worker so the traced job stays queued.
	if _, err := q.Submit(testSpec(t, 2)); err != nil {
		t.Fatal(err)
	}
	tracer := obs.New(obs.Options{})
	ctx, _ := tracer.StartTrace(context.Background(), "", "job")
	s, err := q.SubmitCtx(ctx, testSpec(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Cancel(s.ID); !ok {
		t.Fatal("cancel failed")
	}
	tree, ok := tracer.ByJob(s.ID)
	if !ok {
		t.Fatal("no trace for canceled job")
	}
	if !tree.Complete {
		t.Fatal("canceled-while-queued trace left open")
	}
	if tree.Root.Attrs["state"] != "canceled" {
		t.Fatalf("root attrs: %v", tree.Root.Attrs)
	}
	queueSpans := treeSpans(tree.Root, "queue")
	if len(queueSpans) != 1 || queueSpans[0].Attrs["outcome"] != "canceled" {
		t.Fatalf("queue spans: %+v", queueSpans)
	}
}

func TestStructuredLogsCarryJobAndTraceIDs(t *testing.T) {
	var buf bytes.Buffer
	log, err := obs.NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	runner := func(ctx context.Context, job *Job, progress func(string, string)) (*Result, error) {
		return &Result{Fingerprint: job.Fingerprint}, nil
	}
	q := New(runner, Options{Workers: 1, Log: log})
	defer q.Drain(context.Background())

	tracer := obs.New(obs.Options{})
	ctx, _ := tracer.StartTrace(context.Background(), "log-trace-1", "job")
	s, err := q.SubmitCtx(ctx, testSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, s.ID)
	q.Drain(context.Background())

	out := buf.String()
	for _, msg := range []string{"job accepted", "job started", "job done"} {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, msg) {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("no %q log line in:\n%s", msg, out)
		}
		if !strings.Contains(line, s.ID) {
			t.Errorf("%q line missing job ID: %s", msg, line)
		}
		if !strings.Contains(line, "log-trace-1") {
			t.Errorf("%q line missing trace ID: %s", msg, line)
		}
	}
}
