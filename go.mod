module tempriv

go 1.22
