package tempriv

// One benchmark per evaluation artifact: the paper's Figures 2(a), 2(b) and
// 3, the §3/§4 analytic validations, and the DESIGN.md ablations. Each
// bench regenerates its table end-to-end (simulate → attack → score →
// render), so
//
//	go test -bench . -benchmem
//
// re-derives the entire evaluation. Benchmarks run with reduced packet
// counts and sweep points so a full pass stays in seconds; `go run
// ./cmd/sweep -exp all` regenerates the full-size artifacts recorded in
// EXPERIMENTS.md.

import (
	"io"
	"testing"
)

// benchParams returns the reduced-size parameters shared by the experiment
// benchmarks.
func benchParams() Params {
	p := DefaultParams()
	p.Packets = 300
	p.Interarrivals = []float64{2, 6, 12, 20}
	return p
}

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2a regenerates Figure 2(a): adversary MSE vs 1/λ for the
// three buffering cases.
func BenchmarkFig2a(b *testing.B) { benchmarkExperiment(b, "fig2a") }

// BenchmarkFig2b regenerates Figure 2(b): delivery latency vs 1/λ for the
// three buffering cases.
func BenchmarkFig2b(b *testing.B) { benchmarkExperiment(b, "fig2b") }

// BenchmarkFig3 regenerates Figure 3: baseline vs adaptive (vs path-aware)
// adversary MSE under RCAD.
func BenchmarkFig3(b *testing.B) { benchmarkExperiment(b, "fig3") }

// BenchmarkEq2EPI regenerates the §3.1 entropy-power-inequality validation.
func BenchmarkEq2EPI(b *testing.B) { benchmarkExperiment(b, "eq2-epi") }

// BenchmarkEq4Bound regenerates the §3.2 Anantharam–Verdú bound validation.
func BenchmarkEq4Bound(b *testing.B) { benchmarkExperiment(b, "eq4-bound") }

// BenchmarkMMInf regenerates the §4 M/M/∞ / M/M/k/k occupancy validation.
func BenchmarkMMInf(b *testing.B) { benchmarkExperiment(b, "mm-inf") }

// BenchmarkErlang regenerates the §4 Erlang-loss validation.
func BenchmarkErlang(b *testing.B) { benchmarkExperiment(b, "erlang") }

// BenchmarkAblVictim regenerates the victim-selection ablation.
func BenchmarkAblVictim(b *testing.B) { benchmarkExperiment(b, "abl-victim") }

// BenchmarkAblDist regenerates the delay-distribution ablation.
func BenchmarkAblDist(b *testing.B) { benchmarkExperiment(b, "abl-dist") }

// BenchmarkAblBuffer regenerates the buffer-size ablation.
func BenchmarkAblBuffer(b *testing.B) { benchmarkExperiment(b, "abl-buffer") }

// BenchmarkAblMu regenerates the 1/µ privacy-vs-occupancy ablation.
func BenchmarkAblMu(b *testing.B) { benchmarkExperiment(b, "abl-mu") }

// BenchmarkAblDecomp regenerates the §3.3 delay-decomposition study.
func BenchmarkAblDecomp(b *testing.B) { benchmarkExperiment(b, "abl-decomp") }

// BenchmarkSimulationThroughput measures raw simulator speed on the paper's
// evaluation workload: the Figure-1 topology under RCAD at peak load,
// reported per simulated packet delivery.
func BenchmarkSimulationThroughput(b *testing.B) {
	topo, sources, err := Figure1Topology()
	if err != nil {
		b.Fatal(err)
	}
	proc, err := PeriodicTraffic(2)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := ExponentialDelay(30)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Topology: topo,
		Policy:   PolicyRCAD,
		Delay:    dist,
		Seed:     1,
	}
	for _, s := range sources {
		cfg.Sources = append(cfg.Sources, Source{Node: s, Process: proc, Count: 250})
	}
	b.ResetTimer()
	deliveries := 0
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		deliveries += len(res.Deliveries)
	}
	b.ReportMetric(float64(deliveries)/float64(b.N), "deliveries/op")
}

// BenchmarkAdversaryEstimate measures the cost of one adaptive-adversary
// estimate (the most stateful estimator).
func BenchmarkAdversaryEstimate(b *testing.B) {
	adv, err := NewAdaptiveAdversary(1, 30, 10, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	obs := Observation{ArrivalTime: 100, Header: Header{Origin: 5, HopCount: 15}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.ArrivalTime += 2
		_ = adv.Estimate(obs)
	}
}

// BenchmarkErlangLoss measures the analytic Erlang-loss recurrence.
func BenchmarkErlangLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ErlangLoss(15, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimulationConfig returns the telemetry-benchmark workload: the
// Figure-1 topology under RCAD at peak load.
func benchSimulationConfig(b *testing.B) Config {
	b.Helper()
	topo, sources, err := Figure1Topology()
	if err != nil {
		b.Fatal(err)
	}
	proc, err := PeriodicTraffic(2)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := ExponentialDelay(30)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Topology: topo,
		Policy:   PolicyRCAD,
		Delay:    dist,
		Seed:     1,
	}
	for _, s := range sources {
		cfg.Sources = append(cfg.Sources, Source{Node: s, Process: proc, Count: 150})
	}
	return cfg
}

// BenchmarkRunTelemetryDisabled is the baseline for the telemetry-overhead
// pair: a full simulation with the telemetry hooks compiled in but disabled
// (nil config, so every hook is a nil-guarded no-op).
func BenchmarkRunTelemetryDisabled(b *testing.B) {
	cfg := benchSimulationConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTelemetryEnabled is the same simulation with a live registry
// and the sim-time sampler feeding an in-memory emitter; compare against
// BenchmarkRunTelemetryDisabled to price the observability layer.
func BenchmarkRunTelemetryEnabled(b *testing.B) {
	cfg := benchSimulationConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Telemetry = &TelemetryConfig{
			Registry:    NewTelemetryRegistry(),
			SampleEvery: 1,
			Emitter:     &MemoryEmitter{},
		}
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryHotPathEnabled measures one live counter increment plus
// one histogram observation — the per-event cost a running simulation pays.
func BenchmarkTelemetryHotPathEnabled(b *testing.B) {
	reg := NewTelemetryRegistry()
	c := reg.Counter("bench_total")
	h := reg.Histogram("bench_latency")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i))
	}
}

// BenchmarkTelemetryHotPathDisabled is the same pair of operations through
// nil handles from a nil registry — the disabled path every hook takes when
// Config.Telemetry is unset.
func BenchmarkTelemetryHotPathDisabled(b *testing.B) {
	var reg *TelemetryRegistry
	c := reg.Counter("bench_total")
	h := reg.Histogram("bench_latency")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i))
	}
}

// TestTelemetryDisabledPathAllocationFree pins the disabled telemetry path
// at zero allocations: a regression here would put garbage-collector
// pressure on every simulation event even with telemetry off.
func TestTelemetryDisabledPathAllocationFree(t *testing.T) {
	var reg *TelemetryRegistry
	c := reg.Counter("bench_total")
	g := reg.Gauge("bench_gauge")
	h := reg.Histogram("bench_latency")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(2.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %v per run, want 0", allocs)
	}
}

// BenchmarkOccupancy regenerates the §4 occupancy time series (telemetry
// sampler driven).
func BenchmarkOccupancy(b *testing.B) { benchmarkExperiment(b, "occupancy") }

// BenchmarkAblMix regenerates the §6 mix-mechanism comparison.
func BenchmarkAblMix(b *testing.B) { benchmarkExperiment(b, "abl-mix") }

// BenchmarkAblLattice regenerates the lattice-adversary extension study.
func BenchmarkAblLattice(b *testing.B) { benchmarkExperiment(b, "abl-lattice") }

// BenchmarkSortReorder regenerates the §3.2 reordering study.
func BenchmarkSortReorder(b *testing.B) { benchmarkExperiment(b, "sort-reorder") }
