// Habitat monitoring: the paper's motivating scenario (§2). An endangered
// animal crosses a grid-deployed sensor field; each sensor it passes
// reports the sighting to the sink. A hunter eavesdropping at the sink
// knows every sensor's position (deployment-aware) and tries to reconstruct
// the animal's trajectory — *where* it was *when* — from packet arrival
// times alone.
//
// The pipeline is the full spatio-temporal argument of §1: the hunter's
// temporal estimation error (package adversary) is converted into spatial
// tracking error (package tracking). With no buffering the hunter
// reconstructs the trail almost exactly; under RCAD the reconstruction is
// off by several grid cells on average.
//
//	go run ./examples/habitat
package main

import (
	"fmt"
	"os"

	"tempriv"
)

const (
	gridW, gridH   = 12, 12
	detectionRange = 1.1 // each sensor hears ~1 cell around it
	crossingTime   = 400.0
	sampleEvery    = 8.0 // sensors sample for the asset every 8 time units
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "habitat:", err)
		os.Exit(1)
	}
}

// animalPath returns the animal's trajectory: a diagonal crossing from the
// far corner toward the sink's corner, then along the bottom edge.
func animalPath() (*tempriv.Trajectory, error) {
	return tempriv.NewTrajectory([]tempriv.Waypoint{
		{At: 0, Pos: tempriv.Position{X: 11, Y: 11}},
		{At: crossingTime * 0.6, Pos: tempriv.Position{X: 3, Y: 3}},
		{At: crossingTime, Pos: tempriv.Position{X: 1, Y: 1}},
	})
}

// buildConfig turns the animal's sightings into per-sensor traffic: each
// sensor emits one packet per detection, at the detection times.
func buildConfig(topo *tempriv.Topology, sightings []tempriv.Sighting, policy tempriv.PolicyKind, dist tempriv.DelayDistribution) (tempriv.Config, error) {
	perSensor := make(map[tempriv.NodeID][]float64)
	for _, s := range sightings {
		perSensor[s.Sensor] = append(perSensor[s.Sensor], s.At)
	}
	var sources []tempriv.Source
	for sensor, times := range perSensor {
		if err := topo.MarkSource(sensor); err != nil {
			return tempriv.Config{}, err
		}
		// Convert absolute detection times to interarrival intervals.
		intervals := make([]float64, 0, len(times))
		prev := 0.0
		for _, at := range times {
			gap := at - prev
			if gap <= 0 {
				gap = 1e-3 // same-sample detections: emit back to back
			}
			intervals = append(intervals, gap)
			prev = at
		}
		proc, err := tempriv.TraceTraffic(intervals)
		if err != nil {
			return tempriv.Config{}, err
		}
		sources = append(sources, tempriv.Source{Node: sensor, Process: proc, Count: len(intervals)})
	}
	return tempriv.Config{
		Topology: topo,
		Sources:  sources,
		Policy:   policy,
		Delay:    dist,
		Seed:     7,
	}, nil
}

func run() error {
	traj, err := animalPath()
	if err != nil {
		return err
	}

	dist, err := tempriv.ExponentialDelay(30)
	if err != nil {
		return err
	}

	fmt.Printf("habitat monitor: %dx%d grid, animal crossing for %.0f time units\n\n", gridW, gridH, crossingTime)
	fmt.Printf("%-14s %-10s %-16s %-16s %-12s\n",
		"buffering", "sightings", "mean-track-err", "max-track-err", "mean-latency")

	for _, c := range []struct {
		name      string
		policy    tempriv.PolicyKind
		dist      tempriv.DelayDistribution
		knownMean float64
	}{
		{"none", tempriv.PolicyForward, nil, 0},
		{"RCAD (k=10)", tempriv.PolicyRCAD, dist, 30},
	} {
		// Each case rebuilds the topology: MarkSource mutates it.
		topo, err := tempriv.NewGridTopology(gridW, gridH)
		if err != nil {
			return err
		}
		sightings, err := tempriv.AssetSightings(topo, traj, detectionRange, sampleEvery)
		if err != nil {
			return err
		}
		cfg, err := buildConfig(topo, sightings, c.policy, c.dist)
		if err != nil {
			return err
		}
		res, err := tempriv.Run(cfg)
		if err != nil {
			return err
		}

		// The hunter: estimate each packet's creation time, attach the
		// origin sensor's (known) position, reconstruct the trail.
		hunter, err := tempriv.NewBaselineAdversary(1, c.knownMean)
		if err != nil {
			return err
		}
		var reports []tempriv.TrackReport
		latSum := 0.0
		for i, obs := range res.Observations() {
			pos, err := topo.PositionOf(obs.Header.Origin)
			if err != nil {
				return err
			}
			reports = append(reports, tempriv.TrackReport{
				Pos:         pos,
				EstimatedAt: hunter.Estimate(obs),
			})
			latSum += obs.ArrivalTime - res.Truths()[i]
		}
		rec, err := tempriv.ReconstructTrack(reports)
		if err != nil {
			return err
		}
		trackErr, err := tempriv.EvaluateTracking(traj, rec, 2)
		if err != nil {
			return err
		}

		fmt.Printf("%-14s %-10d %-16s %-16s %-12.1f\n",
			c.name, len(sightings),
			fmt.Sprintf("%.2f cells", trackErr.Mean),
			fmt.Sprintf("%.2f cells", trackErr.Max),
			latSum/float64(len(reports)))
	}

	fmt.Println()
	fmt.Println("Temporal privacy IS spatial privacy for a moving asset (§1): without")
	fmt.Println("buffering the hunter pins the animal to within a cell of its true trail;")
	fmt.Println("RCAD's preemption-hardened delays push the reconstruction several cells")
	fmt.Println("off course — at every moment the hunter aims where the animal was long ago.")
	return nil
}
