// Quickstart: build a 15-hop sensor line, stream packets to the sink, and
// see how much temporal privacy RCAD buys against a deployment-aware
// adversary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"tempriv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A line network: source node 15 is fifteen hops from the sink,
	// matching the paper's flow S1.
	topo, err := tempriv.NewLineTopology(15)
	if err != nil {
		return err
	}

	// The paper's evaluation traffic: one packet every 2 time units —
	// the highest load it studies.
	traffic, err := tempriv.PeriodicTraffic(2)
	if err != nil {
		return err
	}

	// The paper's delay distribution: exponential with mean 1/µ = 30,
	// the maximum-entropy choice at fixed mean (§3.2).
	dist, err := tempriv.ExponentialDelay(30)
	if err != nil {
		return err
	}

	fmt.Println("temporal privacy on a 15-hop line, 1/λ=2, 1/µ=30, k=10")
	fmt.Println()
	fmt.Printf("%-18s %-14s %-14s %-10s\n", "buffering", "adversary-MSE", "mean-latency", "dropped")

	for _, c := range []struct {
		name   string
		policy tempriv.PolicyKind
	}{
		{"none (baseline)", tempriv.PolicyForward},
		{"unlimited", tempriv.PolicyUnlimited},
		{"RCAD (k=10)", tempriv.PolicyRCAD},
	} {
		cfg := tempriv.Config{
			Topology: topo,
			Sources:  []tempriv.Source{{Node: 15, Process: traffic, Count: 1000}},
			Policy:   c.policy,
			Seed:     1,
		}
		if c.policy != tempriv.PolicyForward {
			cfg.Delay = dist
		}
		res, err := tempriv.Run(cfg)
		if err != nil {
			return err
		}

		// The adversary knows the protocol (Kerckhoff): per-hop
		// transmission delay τ=1 plus — when delaying is on — the mean
		// buffering delay 30.
		known := 30.0
		if c.policy == tempriv.PolicyForward {
			known = 0
		}
		adv, err := tempriv.NewBaselineAdversary(1, known)
		if err != nil {
			return err
		}
		mse, err := tempriv.ScoreAdversary(adv, res)
		if err != nil {
			return err
		}

		flow := res.Flows[tempriv.NodeID(15)]
		fmt.Printf("%-18s %-14.4g %-14.1f %-10d\n",
			c.name, mse.Value(), flow.Latency.Mean, flow.Dropped())
	}

	fmt.Println()
	fmt.Println("RCAD's preemptions break the adversary's delay model: its estimation")
	fmt.Println("error (MSE) more than doubles over unlimited buffering, while latency")
	fmt.Println("stays well below the unlimited case and nothing is ever dropped.")
	return nil
}
