// Delay provisioning with the Erlang-loss planner (§4). Traffic aggregates
// as flows merge toward the sink, so a uniform mean delay overloads
// near-sink buffers while leaf buffers idle. The paper's "powerful
// observation" is that the Erlang loss formula lets every node pick its own
// µ for a common target overflow probability α.
//
// This example provisions a merge-tree network both ways — uniform 1/µ = 30
// everywhere vs PlanDelays — and compares preemption rates, near-sink
// buffer pressure, delivery latency and the privacy each scheme buys.
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"os"
	"sort"

	"tempriv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "planner:", err)
		os.Exit(1)
	}
}

func run() error {
	// Six flows of assorted depths merging on a 4-hop trunk.
	hopCounts := []int{8, 10, 12, 14, 16, 18}
	topo, sources, err := tempriv.NewMergeTreeTopology(hopCounts, 4)
	if err != nil {
		return err
	}

	const (
		interarrival = 5.0 // per-source 1/λ
		k            = 10
		alpha        = 0.1
		uniformMean  = 30.0
	)

	// §4 planning: aggregate each node's load down the routing tree, then
	// solve E(λ_node/µ, k) = α per node. maxMean caps leaf delays at the
	// uniform budget so the comparison is delay-for-delay fair.
	rates := make(map[tempriv.NodeID]float64, len(sources))
	for _, s := range sources {
		rates[s] = 1 / interarrival
	}
	plan, err := tempriv.PlanDelays(topo, rates, k, alpha, uniformMean)
	if err != nil {
		return err
	}
	planned, err := tempriv.DelaysFromPlan(plan)
	if err != nil {
		return err
	}

	fmt.Println("Erlang-loss delay provisioning (§4) on a 6-flow merge tree, 1/λ=5, k=10, α=0.1")
	fmt.Println()
	fmt.Println("planned mean delays (trunk nodes carry all six flows):")
	ids := make([]tempriv.NodeID, 0, len(plan))
	for id := range plan {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids[:6] {
		fmt.Printf("  node %-4v 1/µ = %.3g\n", id, plan[id])
	}
	fmt.Println("  ... (leaves stay at the 30-unit cap)")
	fmt.Println()

	fmt.Printf("%-10s %-14s %-16s %-14s %-14s\n",
		"scheme", "preempt-rate", "trunk-occupancy", "mean-latency", "adversary-MSE")
	for _, c := range []struct {
		name    string
		perNode map[tempriv.NodeID]tempriv.DelayDistribution
	}{
		{"uniform", nil},
		{"planned", planned},
	} {
		proc, err := tempriv.PeriodicTraffic(interarrival)
		if err != nil {
			return err
		}
		base, err := tempriv.ExponentialDelay(uniformMean)
		if err != nil {
			return err
		}
		cfg := tempriv.Config{
			Topology:     topo,
			Policy:       tempriv.PolicyRCAD,
			Delay:        base,
			PerNodeDelay: c.perNode,
			Capacity:     k,
			Seed:         3,
		}
		for _, s := range sources {
			cfg.Sources = append(cfg.Sources, tempriv.Source{Node: s, Process: proc, Count: 800})
		}
		res, err := tempriv.Run(cfg)
		if err != nil {
			return err
		}

		var preempts, arrivals uint64
		for _, ns := range res.Nodes {
			preempts += ns.Preemptions
			arrivals += ns.Arrivals
		}
		trunk := res.Nodes[tempriv.NodeID(1)] // adjacent to the sink
		adv, err := tempriv.NewBaselineAdversary(1, uniformMean)
		if err != nil {
			return err
		}
		mse, err := tempriv.ScoreAdversary(adv, res)
		if err != nil {
			return err
		}
		deepest := res.Flows[sources[len(sources)-1]]
		fmt.Printf("%-10s %-14.3f %-16.2f %-14.1f %-14.4g\n",
			c.name,
			float64(preempts)/float64(arrivals),
			trunk.AvgOccupancy,
			deepest.Latency.Mean,
			mse.Value())
	}

	fmt.Println()
	fmt.Println("Planning shifts delay budget away from saturated trunk buffers — whose")
	fmt.Println("sampled delays were being preempted away regardless — cutting the")
	fmt.Println("preemption rate several-fold and relieving near-sink buffer pressure,")
	fmt.Println("at no loss of privacy (the MSE column holds) or latency.")
	return nil
}
