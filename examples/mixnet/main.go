// Mix-network comparison (§6 related work): runs the same sensor field
// under RCAD, an SG-mix (per-message exponential delay, which Danezis
// proved optimal for a given mean at a single node), and Chaum-style batch
// mixes installed through the public CustomPolicy extension point.
//
// Privacy is scored with the genie constant-offset bound — the MSE of an
// adversary who knows each flow's exact mean delay — which is well defined
// for every scheme. The output quantifies the paper's §6 remark that mix
// techniques "do not extend to networks of queues": on a multi-hop path,
// batching either collapses temporal privacy or strands messages, while
// per-packet random delays buy variance at every hop from a 10-slot buffer.
//
//	go run ./examples/mixnet
package main

import (
	"fmt"
	"os"

	"tempriv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mixnet:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		interarrival = 5.0
		meanDelay    = 30.0
		packets      = 800
	)

	dist, err := tempriv.ExponentialDelay(meanDelay)
	if err != nil {
		return err
	}

	schemes := []struct {
		name   string
		policy tempriv.PolicyKind
		delay  tempriv.DelayDistribution
		custom func(*tempriv.Scheduler, tempriv.Forward, *tempriv.RandomSource) (tempriv.BufferPolicy, error)
	}{
		{name: "rcad (k=10)", policy: tempriv.PolicyRCAD, delay: dist},
		{name: "sg-mix", policy: tempriv.PolicyUnlimited, delay: dist},
		{name: "threshold-mix(10)", policy: tempriv.PolicyCustom, custom: tempriv.ThresholdMixPolicy(10, 0)},
		{name: "pool-mix(8+2)", policy: tempriv.PolicyCustom, custom: tempriv.ThresholdMixPolicy(8, 2)},
		{name: "timed-mix(30)", policy: tempriv.PolicyCustom, custom: tempriv.TimedMixPolicy(meanDelay)},
	}

	fmt.Printf("mix mechanisms vs RCAD on the Figure-1 field (1/λ=%g, delay budget %g)\n\n", interarrival, meanDelay)
	fmt.Printf("%-19s %-16s %-14s %-16s %-10s\n",
		"scheme", "genie-MSE", "mean-latency", "peak-occupancy", "delivered")

	for _, sc := range schemes {
		topo, sources, err := tempriv.Figure1Topology()
		if err != nil {
			return err
		}
		proc, err := tempriv.PeriodicTraffic(interarrival)
		if err != nil {
			return err
		}
		cfg := tempriv.Config{
			Topology:     topo,
			Policy:       sc.policy,
			Delay:        sc.delay,
			CustomPolicy: sc.custom,
			Seed:         9,
		}
		for _, s := range sources {
			cfg.Sources = append(cfg.Sources, tempriv.Source{Node: s, Process: proc, Count: packets})
		}
		res, err := tempriv.Run(cfg)
		if err != nil {
			return err
		}

		genie, err := tempriv.BestConstantOffsetMSE(res)
		if err != nil {
			return err
		}
		s1 := sources[0]
		peak := 0.0
		for _, ns := range res.Nodes {
			if ns.MaxOccupancy > peak {
				peak = ns.MaxOccupancy
			}
		}
		fmt.Printf("%-19s %-16.4g %-14.1f %-16.0f %d/%d\n",
			sc.name, genie[s1], res.Flows[s1].Latency.Mean, peak,
			res.Flows[s1].Delivered, packets)
	}

	fmt.Println()
	fmt.Println("Batching mixes release whole cohorts at once: every message in a batch")
	fmt.Println("shares one arrival time, so its *timing* carries almost no uncertainty —")
	fmt.Println("the genie adversary pins creation times to within a batch-fill interval.")
	fmt.Println("Per-packet random delays (sg-mix, RCAD) make each arrival individually")
	fmt.Println("noisy; RCAD keeps most of that privacy on a 10-slot Mica-2 buffer.")
	return nil
}
