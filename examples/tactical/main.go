// Tactical asset tracking: the paper's second motivating scenario (§2) and
// its strongest threat model (§5.4). A sensor field reports asset movements
// over the Figure-1 topology while an adversary at the sink escalates
// through three strategies:
//
//	baseline    x̂ = z − h(τ + 1/µ)           (§2.1, knows the protocol)
//	adaptive    per-hop min(1/µ, k/λ_flow)    (§5.4, measures traffic rates)
//	path-aware  per-node min(1/µ, k/λ_node)   (extension: full routing
//	                                           knowledge, §4 superposition)
//
// The example shows that RCAD retains useful temporal privacy even against
// the strongest estimator the threat model admits.
//
//	go run ./examples/tactical
package main

import (
	"fmt"
	"os"

	"tempriv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tactical:", err)
		os.Exit(1)
	}
}

func run() error {
	topo, sources, err := tempriv.Figure1Topology()
	if err != nil {
		return err
	}
	dist, err := tempriv.ExponentialDelay(30)
	if err != nil {
		return err
	}

	const tau, meanDelay, k, threshold = 1.0, 30.0, 10, 0.1

	fmt.Println("tactical sensing: Figure-1 field, RCAD buffering, escalating adversaries")
	fmt.Println()
	fmt.Printf("%-6s | %-36s\n", "", "adversary MSE for flow S1 (15 hops)")
	fmt.Printf("%-6s | %-12s %-12s %-12s\n", "1/λ", "baseline", "adaptive", "path-aware")
	fmt.Println("-------+--------------------------------------")

	for _, interarrival := range []float64{2, 4, 8, 16} {
		proc, err := tempriv.PeriodicTraffic(interarrival)
		if err != nil {
			return err
		}
		cfg := tempriv.Config{
			Topology: topo,
			Policy:   tempriv.PolicyRCAD,
			Delay:    dist,
			Capacity: k,
			Seed:     11,
		}
		for _, s := range sources {
			cfg.Sources = append(cfg.Sources, tempriv.Source{Node: s, Process: proc, Count: 800})
		}
		res, err := tempriv.Run(cfg)
		if err != nil {
			return err
		}

		paths, err := tempriv.FlowPaths(topo)
		if err != nil {
			return err
		}
		baseline, err := tempriv.NewBaselineAdversary(tau, meanDelay)
		if err != nil {
			return err
		}
		adaptive, err := tempriv.NewAdaptiveAdversary(tau, meanDelay, k, threshold)
		if err != nil {
			return err
		}
		pathAware, err := tempriv.NewPathAwareAdversary(tau, meanDelay, k, threshold, paths)
		if err != nil {
			return err
		}

		row := []float64{}
		for _, adv := range []tempriv.Estimator{baseline, adaptive, pathAware} {
			perFlow, err := tempriv.ScoreAdversaryPerFlow(adv, res)
			if err != nil {
				return err
			}
			m, ok := perFlow[sources[0]]
			if !ok {
				return fmt.Errorf("no deliveries for S1")
			}
			row = append(row, m.Value())
		}
		fmt.Printf("%-6g | %-12.4g %-12.4g %-12.4g\n", interarrival, row[0], row[1], row[2])
	}

	fmt.Println()
	fmt.Println("Stronger adversaries recover part of the error RCAD's preemptions create —")
	fmt.Println("exactly the paper's Figure 3 — but even full routing knowledge cannot undo")
	fmt.Println("the per-packet randomness: the residual MSE stays at the unlimited-buffer")
	fmt.Println("level (≈ h/µ² ≈ 1.35e4), which only a longer mean delay can raise.")
	return nil
}
