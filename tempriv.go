// Package tempriv is a from-scratch reproduction of "Temporal Privacy in
// Wireless Sensor Networks" (Kamat, Xu, Trappe, Zhang — ICDCS 2007).
//
// Temporal privacy is the problem of preventing an adversary who observes
// packet arrivals at a sensor network's sink from inferring when those
// packets were created. The paper's defence — and this library's core — is
// RCAD (Rate-Controlled Adaptive Delaying): every node on the routing path
// buffers each packet for a random exponential delay, and when a finite
// buffer fills, the packet with the shortest remaining delay is transmitted
// immediately instead of dropping anything.
//
// The package is a facade over the internal implementation:
//
//   - Build a deployment with NewLineTopology, NewGridTopology,
//     NewMergeTreeTopology or Figure1Topology (the paper's evaluation
//     network).
//   - Describe traffic with PeriodicTraffic, PoissonTraffic, OnOffTraffic
//     or TraceTraffic.
//   - Configure buffering with the Policy* constants, a delay distribution
//     (ExponentialDelay et al.), a buffer capacity and a victim selector.
//   - Run the simulation with Run, which returns per-flow latency, per-node
//     buffer statistics, and the sink's packet deliveries.
//   - Attack the result with NewBaselineAdversary, NewAdaptiveAdversary or
//     NewPathAwareAdversary, scored by ScoreAdversary /
//     ScoreAdversaryPerFlow (mean square error, as in the paper).
//   - Regenerate every figure of the paper's evaluation via Experiments /
//     ExperimentByID, or plan per-node delays analytically with PlanDelays
//     (the §4 Erlang-loss design rule).
//
// Simulated time is unitless, matching the paper (per-hop transmission
// delay τ = 1 time unit, mean buffering delay 1/µ = 30, and so on). All
// randomness derives from Config.Seed: equal configurations produce
// identical results.
package tempriv

import (
	"fmt"
	"io"

	"tempriv/internal/adversary"
	"tempriv/internal/buffer"
	"tempriv/internal/core"
	"tempriv/internal/delay"
	"tempriv/internal/experiment"
	"tempriv/internal/metrics"
	"tempriv/internal/mix"
	"tempriv/internal/network"
	"tempriv/internal/packet"
	"tempriv/internal/queueing"
	"tempriv/internal/report"
	"tempriv/internal/rng"
	"tempriv/internal/routing"
	"tempriv/internal/sim"
	"tempriv/internal/telemetry"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
	"tempriv/internal/tracking"
	"tempriv/internal/traffic"
)

// Core simulation types, aliased from the internal packages so that every
// method documented there is available on the public API.
type (
	// NodeID identifies a node in a deployment; the sink is always node
	// Sink (0).
	NodeID = packet.NodeID
	// Header is the cleartext routing header an adversary can read.
	Header = packet.Header
	// Reading is the application payload (value, sequence, timestamp) that
	// travels encrypted.
	Reading = packet.Reading
	// Topology is a deployment: placed nodes and radio links.
	Topology = topology.Topology
	// Position locates a node on the deployment plane.
	Position = topology.Position
	// Config describes one simulation run; see Run.
	Config = network.Config
	// Source declares one traffic source within a Config.
	Source = network.Source
	// RateControl enables the §4 Erlang-loss delay planner on every node.
	RateControl = network.RateControl
	// NodeFailure schedules a permanent node death (failure injection).
	NodeFailure = network.NodeFailure
	// ChannelConfig models unreliable links: Bernoulli or Gilbert–Elliott
	// burst frame loss, plus ACK loss when ARQ is enabled.
	ChannelConfig = network.ChannelConfig
	// ARQConfig enables per-hop acknowledgement/retransmission with capped
	// exponential backoff.
	ARQConfig = network.ARQConfig
	// PolicyKind selects the buffering behaviour (see the Policy*
	// constants).
	PolicyKind = network.PolicyKind
	// Result is a completed simulation: deliveries, flow and node
	// statistics.
	Result = network.Result
	// Delivery is one packet arrival at the sink.
	Delivery = network.Delivery
	// FlowStats summarises one source flow.
	FlowStats = network.FlowStats
	// NodeStats summarises one buffering node.
	NodeStats = network.NodeStats
	// Observation is the adversary's view of one arrival.
	Observation = adversary.Observation
	// Estimator is an adversary strategy estimating packet creation times.
	Estimator = adversary.Estimator
	// MSE accumulates an adversary's mean square estimation error.
	MSE = metrics.MSE
	// LatencyReport summarises an end-to-end latency distribution.
	LatencyReport = metrics.LatencyReport
	// DelayDistribution is a samplable buffering-delay distribution.
	DelayDistribution = delay.Distribution
	// TrafficProcess generates packet interarrival times.
	TrafficProcess = traffic.Process
	// VictimSelector picks the packet a full RCAD buffer preempts.
	VictimSelector = buffer.VictimSelector
	// Scheduler is the discrete-event simulation kernel, passed to
	// Config.CustomPolicy factories. Besides callback scheduling (At/After)
	// it supports process-oriented modelling via Spawn; see Proc.
	Scheduler = sim.Scheduler
	// Proc is a goroutine-backed simulation process created by
	// Scheduler.Spawn: model code that sleeps in simulated time via Wait.
	// Exactly one process runs at a time, so models stay deterministic.
	Proc = sim.Proc
	// Forward is the callback a buffering policy invokes to release a
	// packet.
	Forward = buffer.Forward
	// RandomSource is a deterministic random stream (each custom policy
	// receives its own substream).
	RandomSource = rng.Source
	// BufferPolicy is a node's store-and-forward buffering behaviour; see
	// Config.CustomPolicy for installing your own.
	BufferPolicy = buffer.Policy
	// Params are the shared experiment knobs (seed, packet counts, sweep).
	Params = experiment.Params
	// Experiment is one registered, reproducible study.
	Experiment = experiment.Experiment
	// Table is a rendered experiment result (ASCII and CSV).
	Table = report.Table
	// TraceEvent is one per-packet lifecycle record (see Config.Tracer).
	TraceEvent = trace.Event
	// TraceRecorder consumes lifecycle events.
	TraceRecorder = trace.Recorder
	// MemoryTracer retains lifecycle events in-process for analysis.
	MemoryTracer = trace.Memory
	// JSONLTracer streams lifecycle events as JSON Lines.
	JSONLTracer = trace.JSONL
	// TelemetryConfig attaches the run-observability layer to a Config:
	// a live metric registry and/or a sim-time queue-state sampler. See
	// Config.Telemetry.
	TelemetryConfig = telemetry.Config
	// TelemetryRegistry is a thread-safe collection of live counters,
	// gauges and log-bucketed histograms. It serves the Prometheus text
	// format over HTTP (it implements http.Handler).
	TelemetryRegistry = telemetry.Registry
	// TelemetrySample is one sim-time snapshot of queue state: per-node
	// occupancy, in-flight count, cumulative delivery/drop counters and
	// the adversary-observable sink arrival rate.
	TelemetrySample = telemetry.Sample
	// TelemetryEmitter consumes the sampler's time series.
	TelemetryEmitter = telemetry.Emitter
	// MemoryEmitter retains samples in-process.
	MemoryEmitter = telemetry.Memory
	// JSONLEmitter streams samples as JSON Lines; Close it to flush.
	JSONLEmitter = telemetry.JSONL
	// RunManifest records a run's provenance: config fingerprint, seed,
	// Go version and wall-clock performance. Every Result carries one.
	RunManifest = telemetry.Manifest
)

// Trace event kinds recorded by Config.Tracer.
const (
	// TraceCreated: a source generated the packet.
	TraceCreated = trace.Created
	// TraceAdmitted: a node's buffer accepted the packet.
	TraceAdmitted = trace.Admitted
	// TraceReleased: the packet completed its sampled delay.
	TraceReleased = trace.Released
	// TracePreempted: RCAD forced the packet out early.
	TracePreempted = trace.Preempted
	// TraceDelivered: the packet reached the sink.
	TraceDelivered = trace.Delivered
	// TraceLost: the packet died at a failed node.
	TraceLost = trace.Lost
	// TraceLinkLoss: the channel destroyed a frame (or its ACK) in flight.
	TraceLinkLoss = trace.LinkLoss
	// TraceRetransmit: ARQ re-sent a frame after a timeout.
	TraceRetransmit = trace.Retransmit
	// TraceLinkDrop: the ARQ retry budget ran out; the packet is gone.
	TraceLinkDrop = trace.LinkDrop
	// TraceRerouted: route repair gave the node a new parent after a failure.
	TraceRerouted = trace.Rerouted
	// TraceDuplicate: the sink suppressed an ARQ-induced duplicate arrival.
	TraceDuplicate = trace.Duplicate
)

// DefaultARQ returns the ARQ configuration the CLIs and the abl-linkloss
// experiment use: 3 retries per hop, timeout 3τ, backoff ×2 capped at 10×.
func DefaultARQ() *ARQConfig { return network.DefaultARQ() }

// NewJSONLTracer returns a TraceRecorder writing one JSON object per
// lifecycle event to w; check its Err method after the run.
func NewJSONLTracer(w io.Writer) (*JSONLTracer, error) { return trace.NewJSONL(w) }

// NewTelemetryRegistry returns an empty live-metric registry for
// TelemetryConfig.Registry. A nil registry disables live metrics at
// near-zero cost.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// NewJSONLEmitter returns a TelemetryEmitter streaming one JSON object per
// sample to w through an internal buffer; Close it after the run and check
// the error.
func NewJSONLEmitter(w io.Writer) (*JSONLEmitter, error) { return telemetry.NewJSONL(w) }

// NewPromFileEmitter returns a TelemetryEmitter that rewrites path with the
// registry's Prometheus text snapshot on every sample (the textfile-
// collector pattern for watching long runs without HTTP).
func NewPromFileEmitter(reg *TelemetryRegistry, path string) (TelemetryEmitter, error) {
	return telemetry.NewPromFile(reg, path)
}

// MultiTelemetryEmitter fans samples out to several emitters; closing it
// closes every wrapped emitter that buffers output.
func MultiTelemetryEmitter(emitters ...TelemetryEmitter) TelemetryEmitter {
	return telemetry.MultiEmitter(emitters...)
}

// ConfigFingerprint returns the hex SHA-256 of v's canonical JSON form —
// the same fingerprinting run manifests use to identify configurations.
func ConfigFingerprint(v any) (string, error) { return telemetry.Fingerprint(v) }

// Sink is the node ID of the network sink in every topology.
const Sink = topology.Sink

// DefaultBufferCapacity is the paper's buffer size: 10 packets (§5.3,
// approximating a Mica-2 mote).
const DefaultBufferCapacity = core.DefaultCapacity

// Buffering policies, matching the paper's evaluation cases (§5.3).
const (
	// PolicyForward forwards packets immediately (case 1, "NoDelay").
	PolicyForward = network.PolicyForward
	// PolicyUnlimited delays with unbounded buffers (case 2).
	PolicyUnlimited = network.PolicyUnlimited
	// PolicyDropTail delays with finite buffers that drop when full (§4's
	// M/M/k/k model).
	PolicyDropTail = network.PolicyDropTail
	// PolicyRCAD delays with finite buffers that preempt when full — the
	// paper's contribution (case 3).
	PolicyRCAD = network.PolicyRCAD
	// PolicyCustom installs the BufferPolicy built by Config.CustomPolicy
	// on every node (e.g. ThresholdMixPolicy, TimedMixPolicy, or your own).
	PolicyCustom = network.PolicyCustom
)

// Run executes one simulation to completion. See Config for the knobs; the
// zero values of optional fields reproduce the paper's settings (τ = 1,
// k = 10, shortest-remaining victim selection).
func Run(cfg Config) (*Result, error) { return network.Run(cfg) }

// Engine is a reusable simulation instance: one Engine runs many configs
// that share the same structural shape (topology, policy kind, capacity,
// victim rule, rate-control setting), reusing its built routes, buffers,
// scheduler and packet arena across runs. Engine.Run(cfg) produces results
// byte-identical to Run(cfg); reuse is purely an execution optimisation.
// An Engine is not safe for concurrent use; give each goroutine its own,
// or share an EngineCache.
type Engine = network.Engine

// NewEngine builds a reusable Engine for cfg's structural shape without
// running it. Pass each run's full Config to Engine.Run — per-run state
// (seed, traffic processes, delay distributions, failures) is adopted
// fresh every run.
func NewEngine(cfg Config) (*Engine, error) { return network.NewEngine(cfg) }

// EngineCache pools Engines by structural shape so sweeps over seeds or
// traffic parameters rebuild nothing. Safe for concurrent use: engines are
// checked out exclusively for the duration of a run.
type EngineCache = network.EngineCache

// NewEngineCache returns an empty engine cache for use with RunCached.
func NewEngineCache() *EngineCache { return network.NewEngineCache() }

// RunCached is Run through an EngineCache: structurally matching configs
// reuse a pooled engine. A nil cache, a custom policy, or an attached
// tracer/telemetry observer falls back to a fresh engine per run. Results
// are byte-identical to Run either way.
func RunCached(cache *EngineCache, cfg Config) (*Result, error) {
	return network.RunCached(cache, cfg)
}

// NewLineTopology builds the §3.3 line network: a single source `hops` hops
// from the sink, node i being i hops out.
func NewLineTopology(hops int) (*Topology, error) { return topology.Line(hops) }

// NewGridTopology builds a w×h grid deployment with 4-neighbour links and
// the sink at one corner. Mark traffic sources with Topology.MarkSource.
func NewGridTopology(w, h int) (*Topology, error) { return topology.Grid(w, h) }

// GridNodeID returns the node at grid coordinate (x, y) of a grid built
// with width w.
func GridNodeID(w, x, y int) NodeID { return topology.GridID(w, x, y) }

// NewMergeTreeTopology builds one source per hop count whose routing paths
// share the final trunkLen hops before the sink (§4's progressive merging).
// It returns the topology and the sources in hopCounts order.
func NewMergeTreeTopology(hopCounts []int, trunkLen int) (*Topology, []NodeID, error) {
	return topology.MergeTree(hopCounts, trunkLen)
}

// Figure1Topology builds the paper's evaluation network: four flows with
// hop counts 15, 22, 9 and 11 merging toward the sink (§5.2, Figure 1). The
// returned sources are S1…S4 in paper order.
func Figure1Topology() (*Topology, []NodeID, error) { return topology.Figure1() }

// NewRandomGeometricTopology builds the classic WSN deployment model: n
// nodes placed uniformly in a side×side field, linked within the radio
// radius (unit-disk graph), sink at the origin corner. Placement is
// deterministic in seed; it returns an error (topology.ErrDisconnected
// internally) when the sampled field cannot reach the sink — retry with
// another seed, more nodes, or a larger radius.
func NewRandomGeometricTopology(n int, side, radius float64, seed uint64) (*Topology, error) {
	return topology.RandomGeometric(n, side, radius, rng.New(seed))
}

// ExponentialDelay returns the paper's delay distribution of choice:
// exponential with the given mean (1/µ), the maximum-entropy non-negative
// distribution at fixed mean (§3.2).
func ExponentialDelay(mean float64) (DelayDistribution, error) { return delay.NewExponential(mean) }

// UniformDelay returns a delay uniform on [0, 2·mean].
func UniformDelay(mean float64) (DelayDistribution, error) { return delay.NewUniform(mean) }

// ConstantDelay returns a deterministic delay.
func ConstantDelay(value float64) (DelayDistribution, error) { return delay.NewConstant(value) }

// ParetoDelay returns a heavy-tailed Pareto delay with the given mean and
// shape (> 1).
func ParetoDelay(mean, shape float64) (DelayDistribution, error) {
	return delay.NewPareto(mean, shape)
}

// DelayByName constructs a delay distribution from its report name
// ("exponential", "uniform", "constant", "pareto", "none").
func DelayByName(name string, mean float64) (DelayDistribution, error) {
	return delay.ByName(name, mean)
}

// PeriodicTraffic returns the paper's evaluation traffic: one packet every
// interval time units (§5.2).
func PeriodicTraffic(interval float64) (TrafficProcess, error) { return traffic.NewPeriodic(interval) }

// PoissonTraffic returns a Poisson packet-creation process with rate λ
// (used by the paper's analytic sections).
func PoissonTraffic(rate float64) (TrafficProcess, error) { return traffic.NewPoisson(rate) }

// OnOffTraffic returns a bursty two-state source: Poisson bursts at onRate
// for exponential on-periods (mean onMean) separated by exponential silences
// (mean offMean).
func OnOffTraffic(onRate, onMean, offMean float64) (TrafficProcess, error) {
	return traffic.NewOnOff(onRate, onMean, offMean)
}

// TraceTraffic replays a recorded interarrival sequence, looping at the end.
func TraceTraffic(intervals []float64) (TrafficProcess, error) { return traffic.NewTrace(intervals) }

// Victim selectors for PolicyRCAD.
var (
	// ShortestRemainingVictim is the paper's rule: preempt the packet
	// closest to leaving anyway (§5).
	ShortestRemainingVictim VictimSelector = buffer.ShortestRemaining{}
	// LongestRemainingVictim preempts the packet with the most delay left.
	LongestRemainingVictim VictimSelector = buffer.LongestRemaining{}
	// OldestVictim preempts the packet buffered longest.
	OldestVictim VictimSelector = buffer.Oldest{}
	// RandomVictim preempts a uniformly random packet.
	RandomVictim VictimSelector = buffer.Random{}
)

// VictimByName returns a victim selector from its report name
// ("shortest-remaining", "longest-remaining", "oldest", "random").
func VictimByName(name string) (VictimSelector, error) { return buffer.SelectorByName(name) }

// NewBaselineAdversary returns the §2.1 adversary: it estimates each
// packet's creation time as arrival − h·(τ + meanDelay), where h is the
// cleartext hop count. Use meanDelay 0 against a non-delaying network.
func NewBaselineAdversary(tau, meanDelay float64) (Estimator, error) {
	return adversary.NewBaseline(tau, meanDelay)
}

// NewAdaptiveAdversary returns the §5.4 adversary: it measures arrival
// rates at the sink and switches its per-hop delay estimate to
// min(1/µ, k/λ_flow) when the Erlang loss formula predicts preemption above
// threshold (the paper uses 0.1).
func NewAdaptiveAdversary(tau, meanDelay float64, bufferSlots int, threshold float64) (Estimator, error) {
	return adversary.NewAdaptive(tau, meanDelay, bufferSlots, threshold)
}

// NewPathAwareAdversary returns the deployment-knowledge extension of the
// adaptive adversary: given each flow's routing path it estimates every
// hop's delay from that node's aggregate traffic. Build paths with
// FlowPaths.
func NewPathAwareAdversary(tau, meanDelay float64, bufferSlots int, threshold float64, paths map[NodeID][]NodeID) (Estimator, error) {
	return adversary.NewPathAware(tau, meanDelay, bufferSlots, threshold, paths)
}

// NewLatticeAdversary wraps another estimator with the knowledge that
// sources emit periodically: estimates snap to the nearest multiple of the
// period. It recovers creation times exactly whenever the inner error stays
// under half a period — so a delay budget below the source's own timing
// granularity buys no temporal privacy at all (see the abl-lattice
// experiment).
func NewLatticeAdversary(inner Estimator, period float64) (Estimator, error) {
	return adversary.NewLattice(inner, period)
}

// ScoreAdversary replays a result's deliveries through an estimator and
// returns its mean square error — the paper's privacy metric (higher MSE
// means more temporal privacy).
func ScoreAdversary(est Estimator, res *Result) (*MSE, error) {
	return adversary.Score(est, res.Observations(), res.Truths())
}

// ScoreAdversaryPerFlow is ScoreAdversary broken out by source flow,
// matching the paper's per-flow reporting.
func ScoreAdversaryPerFlow(est Estimator, res *Result) (map[NodeID]*MSE, error) {
	return adversary.ScorePerFlow(est, res.Observations(), res.Truths())
}

// FlowPaths computes, for every source marked in the topology, the ordered
// buffering nodes on its routing path (source first, sink excluded) — the
// input NewPathAwareAdversary needs.
func FlowPaths(topo *Topology) (map[NodeID][]NodeID, error) {
	routes, err := routing.BuildTree(topo)
	if err != nil {
		return nil, fmt.Errorf("tempriv: routing: %w", err)
	}
	out := make(map[NodeID][]NodeID)
	for _, s := range topo.Sources() {
		full, err := routes.Path(s)
		if err != nil {
			return nil, fmt.Errorf("tempriv: path for %v: %w", s, err)
		}
		out[s] = full[:len(full)-1]
	}
	return out, nil
}

// HopCounts returns each marked source's routing-path length to the sink.
func HopCounts(topo *Topology) (map[NodeID]int, error) {
	routes, err := routing.BuildTree(topo)
	if err != nil {
		return nil, fmt.Errorf("tempriv: routing: %w", err)
	}
	out := make(map[NodeID]int)
	for _, s := range topo.Sources() {
		h, ok := routes.HopCount(s)
		if !ok {
			return nil, fmt.Errorf("tempriv: source %v not routed", s)
		}
		out[s] = h
	}
	return out, nil
}

// PlanDelays runs the §4 Erlang-loss planner over a topology: given each
// source's packet rate, a buffer size k and a target drop/preemption
// probability alpha, it returns the mean buffering delay every node should
// use (capped at maxMean). Nodes near the sink carry aggregated traffic and
// receive proportionally shorter delays — the paper's key provisioning
// observation. Feed the result to Config.PerNodeDelay via
// DelaysFromPlan.
func PlanDelays(topo *Topology, sourceRates map[NodeID]float64, k int, alpha, maxMean float64) (map[NodeID]float64, error) {
	routes, err := routing.BuildTree(topo)
	if err != nil {
		return nil, fmt.Errorf("tempriv: routing: %w", err)
	}
	agg, err := routes.AggregateRates(sourceRates)
	if err != nil {
		return nil, fmt.Errorf("tempriv: aggregating rates: %w", err)
	}
	plan, err := core.PlanTree(agg, k, alpha, maxMean)
	if err != nil {
		return nil, fmt.Errorf("tempriv: planning delays: %w", err)
	}
	return plan, nil
}

// DelaysFromPlan converts a PlanDelays result into the exponential per-node
// delay distributions Config.PerNodeDelay expects.
func DelaysFromPlan(plan map[NodeID]float64) (map[NodeID]DelayDistribution, error) {
	out := make(map[NodeID]DelayDistribution, len(plan))
	for id, mean := range plan {
		d, err := delay.NewExponential(mean)
		if err != nil {
			return nil, fmt.Errorf("tempriv: node %v: %w", id, err)
		}
		out[id] = d
	}
	return out, nil
}

// ThresholdMixPolicy returns a Config.CustomPolicy factory installing a
// Chaum-style threshold pool mix on every node: messages accumulate until
// batch+pool are buffered, then batch random messages flush while pool
// random messages stay to mix with future traffic. One of the §6
// related-work comparators (see the abl-mix experiment).
func ThresholdMixPolicy(batch, pool int) func(*Scheduler, Forward, *RandomSource) (BufferPolicy, error) {
	return func(s *Scheduler, f Forward, src *RandomSource) (BufferPolicy, error) {
		return mix.NewThresholdMix(s, f, batch, pool, src)
	}
}

// TimedMixPolicy returns a Config.CustomPolicy factory installing a timed
// mix on every node: the whole buffer flushes every interval, in random
// order.
func TimedMixPolicy(interval float64) func(*Scheduler, Forward, *RandomSource) (BufferPolicy, error) {
	return func(s *Scheduler, f Forward, src *RandomSource) (BufferPolicy, error) {
		return mix.NewTimedMix(s, f, interval, src)
	}
}

// BestConstantOffsetMSE returns, per flow, the MSE of a genie adversary
// that knows each flow's exact mean delay — the scheme-independent privacy
// floor used to compare unlike delaying mechanisms (it equals the per-flow
// latency variance).
func BestConstantOffsetMSE(res *Result) (map[NodeID]float64, error) {
	return adversary.BestConstantOffsetMSE(res.Observations(), res.Truths())
}

// ErlangLoss returns the Erlang-B blocking probability E(ρ, k): the chance
// an arriving packet finds all k buffer slots of an M/M/k/k node full
// (§4 eq. 5).
func ErlangLoss(rho float64, k int) (float64, error) { return queueing.ErlangLoss(rho, k) }

// PlanMu returns the per-packet delay rate µ a k-slot node with incoming
// rate lambda must use so its Erlang loss equals alpha — the single-node
// form of PlanDelays.
func PlanMu(lambda float64, k int, alpha float64) (float64, error) {
	return queueing.PlanMu(lambda, k, alpha)
}

// MMInfOccupancyPMF returns the steady-state probability that an unlimited
// delaying buffer with arrival rate lambda and mean delay 1/mu holds
// exactly n packets: Poisson(λ/µ) at n (§4).
func MMInfOccupancyPMF(lambda, mu float64, n int) (float64, error) {
	return queueing.MMInfOccupancyPMF(lambda, mu, n)
}

// MMkkOccupancyPMF returns the steady-state occupancy distribution of a
// k-slot M/M/k/k buffer at utilization rho, evaluated at n.
func MMkkOccupancyPMF(rho float64, k, n int) (float64, error) {
	return queueing.MMkkOccupancyPMF(rho, k, n)
}

// Asset-tracking types (package tracking): the paper's §1 motivation made
// quantitative — temporal estimation error becomes spatial tracking error.
type (
	// Waypoint fixes a mobile asset's position at a time.
	Waypoint = tracking.Waypoint
	// Trajectory is a piecewise-linear asset path.
	Trajectory = tracking.Trajectory
	// Sighting is one sensor detection of the asset (the packet-creation
	// event whose time RCAD protects).
	Sighting = tracking.Sighting
	// TrackReport pairs a reporting sensor's position with the adversary's
	// creation-time estimate.
	TrackReport = tracking.Report
	// TrackReconstruction is the adversary's estimated asset trajectory.
	TrackReconstruction = tracking.Reconstruction
	// TrackError summarises spatial tracking error (mean/max distance).
	TrackError = tracking.Error
)

// NewTrajectory builds an asset trajectory from waypoints with strictly
// increasing times.
func NewTrajectory(points []Waypoint) (*Trajectory, error) { return tracking.NewTrajectory(points) }

// AssetSightings samples a trajectory and returns which sensors detect the
// asset when, given a detection range and sampling interval.
func AssetSightings(topo *Topology, traj *Trajectory, detectionRange, sampleInterval float64) ([]Sighting, error) {
	return tracking.Sightings(topo, traj, detectionRange, sampleInterval)
}

// ReconstructTrack builds the adversary's trajectory estimate from
// (position, estimated time) reports.
func ReconstructTrack(reports []TrackReport) (*TrackReconstruction, error) {
	return tracking.Reconstruct(reports)
}

// EvaluateTracking scores a reconstruction against the true trajectory,
// sampling every step time units.
func EvaluateTracking(traj *Trajectory, rec *TrackReconstruction, step float64) (TrackError, error) {
	return tracking.TrackingError(traj, rec, step)
}

// BatchMeansResult is the outcome of a batch-means steady-state analysis.
type BatchMeansResult = metrics.BatchMeansResult

// BatchMeans estimates a steady-state mean with a 95% confidence interval
// from one correlated sample path (standard simulation-output methodology).
func BatchMeans(samples []float64, batches int) (BatchMeansResult, error) {
	return metrics.BatchMeans(samples, batches)
}

// MMInfTransientMean returns the expected occupancy of an M/M/∞ buffering
// node t time units after starting empty: ρ·(1 − e^{−µt}) — the warmup
// curve behind every steady-state measurement in this repository.
func MMInfTransientMean(lambda, mu, t float64) (float64, error) {
	return queueing.MMInfTransientMean(lambda, mu, t)
}

// Experiments returns the full registry of reproducible studies: the
// paper's Figures 2(a), 2(b) and 3, the §3/§4 analytic validations, and the
// design-choice ablations. See DESIGN.md for the index.
func Experiments() []Experiment { return experiment.All() }

// ExperimentByID returns one registered experiment ("fig2a", "fig3",
// "erlang", …).
func ExperimentByID(id string) (Experiment, error) { return experiment.ByID(id) }

// ExperimentIDs returns the registered experiment IDs in presentation
// order.
func ExperimentIDs() []string { return experiment.IDs() }

// DefaultParams returns the paper's §5.2 evaluation parameters: 1000
// packets per source, 1/λ from 2 to 20, 1/µ = 30, k = 10, τ = 1.
func DefaultParams() Params { return experiment.Defaults() }

// ReplicateExperiment runs an experiment under n consecutive seeds and
// returns the across-seed means with 95% confidence half-widths — the
// replication the paper's single-run evaluation lacks.
func ReplicateExperiment(e Experiment, p Params, n int) (*Table, error) {
	return experiment.Replicate(e, p, n)
}

// ReplicateExperimentParallel is ReplicateExperiment with replications
// spread over up to workers goroutines. Seeds derive from the replication
// index, and reduction order is fixed, so the table is byte-identical to
// the serial form for every worker count.
func ReplicateExperimentParallel(e Experiment, p Params, n, workers int) (*Table, error) {
	return experiment.ReplicateParallel(e, p, n, workers)
}
